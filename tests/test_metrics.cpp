#include <gtest/gtest.h>

#include "metrics/job_class.hpp"
#include "metrics/summary.hpp"
#include "metrics/trace_mix.hpp"
#include "test_support.hpp"

namespace sbs {
namespace {

using test::job;
using test::trace_of;

JobOutcome outcome(Job j, Time start) {
  JobOutcome o;
  o.job = j;
  o.start = start;
  o.end = start + j.runtime;
  return o;
}

TEST(BoundedSlowdown, ZeroWaitIsOne) {
  EXPECT_DOUBLE_EQ(bounded_slowdown(outcome(job(0, 0, 1, kHour), 0)), 1.0);
}

TEST(BoundedSlowdown, OneMinuteFloorForShortJobs) {
  // 10-second job waiting 60 s: treated as a 1-minute job -> (60+60)/60 = 2.
  EXPECT_DOUBLE_EQ(bounded_slowdown(outcome(job(0, 0, 1, 10), 60)), 2.0);
  // Same as an exactly-1-minute job with the same wait.
  EXPECT_DOUBLE_EQ(bounded_slowdown(outcome(job(0, 0, 1, kMinute), 60)), 2.0);
}

TEST(BoundedSlowdown, LongJobUsesActualRuntime) {
  // 2h job waiting 2h: (2h + 2h) / 2h = 2.
  EXPECT_DOUBLE_EQ(
      bounded_slowdown(outcome(job(0, 0, 1, 2 * kHour), 2 * kHour)), 2.0);
}

TEST(ExcessiveWait, ZeroWhenUnderThreshold) {
  const auto o = outcome(job(0, 0, 1, 100), 50);
  EXPECT_EQ(excessive_wait(o, 50), 0);
  EXPECT_EQ(excessive_wait(o, 49), 1);
}

TEST(Summary, ComputesAllMeasures) {
  std::vector<JobOutcome> outs = {
      outcome(job(0, 0, 1, kHour), 0),          // wait 0
      outcome(job(1, 0, 1, kHour), 2 * kHour),  // wait 2h
      outcome(job(2, 0, 1, kHour), 4 * kHour),  // wait 4h
  };
  const Summary s = summarize(outs);
  EXPECT_EQ(s.jobs, 3u);
  EXPECT_DOUBLE_EQ(s.avg_wait_h, 2.0);
  EXPECT_DOUBLE_EQ(s.max_wait_h, 4.0);
  EXPECT_DOUBLE_EQ(s.avg_bounded_slowdown, (1.0 + 3.0 + 5.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.max_bounded_slowdown, 5.0);
  EXPECT_DOUBLE_EQ(s.avg_turnaround_h, 3.0);
}

TEST(Summary, SkipsOutOfWindowJobs) {
  std::vector<JobOutcome> outs = {
      outcome(job(0, 0, 1, kHour), 0),
      outcome(job(1, 0, 1, kHour, 0, false), 100 * kHour),
  };
  const Summary s = summarize(outs);
  EXPECT_EQ(s.jobs, 1u);
  EXPECT_DOUBLE_EQ(s.max_wait_h, 0.0);
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.avg_wait_h, 0.0);
}

TEST(ExcessiveStats, AggregatesOnlyPositiveExcess) {
  std::vector<JobOutcome> outs = {
      outcome(job(0, 0, 1, kHour), kHour),      // wait 1h, excess 0
      outcome(job(1, 0, 1, kHour), 3 * kHour),  // wait 3h, excess 1h
      outcome(job(2, 0, 1, kHour), 6 * kHour),  // wait 6h, excess 4h
  };
  const ExcessiveWaitStats e = excessive_stats(outs, 2 * kHour);
  EXPECT_EQ(e.count, 2u);
  EXPECT_DOUBLE_EQ(e.total_h, 5.0);
  EXPECT_DOUBLE_EQ(e.avg_h, 2.5);
  EXPECT_DOUBLE_EQ(e.max_h, 4.0);
}

TEST(ExcessiveStats, ZeroForGenerousThreshold) {
  std::vector<JobOutcome> outs = {outcome(job(0, 0, 1, kHour), kHour)};
  const ExcessiveWaitStats e = excessive_stats(outs, 100 * kHour);
  EXPECT_EQ(e.count, 0u);
  EXPECT_DOUBLE_EQ(e.total_h, 0.0);
}

TEST(JobClass, NodeBoundaries) {
  EXPECT_EQ(node_class(1), 0u);
  EXPECT_EQ(node_class(2), 1u);
  EXPECT_EQ(node_class(8), 1u);
  EXPECT_EQ(node_class(9), 2u);
  EXPECT_EQ(node_class(32), 2u);
  EXPECT_EQ(node_class(33), 3u);
  EXPECT_EQ(node_class(64), 3u);
  EXPECT_EQ(node_class(65), 4u);
  EXPECT_EQ(node_class(128), 4u);
}

TEST(JobClass, RuntimeBoundaries) {
  EXPECT_EQ(runtime_class(1), 0u);
  EXPECT_EQ(runtime_class(10 * kMinute), 0u);
  EXPECT_EQ(runtime_class(10 * kMinute + 1), 1u);
  EXPECT_EQ(runtime_class(kHour), 1u);
  EXPECT_EQ(runtime_class(4 * kHour), 2u);
  EXPECT_EQ(runtime_class(8 * kHour), 3u);
  EXPECT_EQ(runtime_class(8 * kHour + 1), 4u);
}

TEST(JobClass, GridAveragesPerCell) {
  std::vector<JobOutcome> outs = {
      outcome(job(0, 0, 1, 5 * kMinute), kHour),      // (0,0) wait 1h
      outcome(job(1, 0, 1, 5 * kMinute), 3 * kHour),  // (0,0) wait 3h
      outcome(job(2, 0, 64, 10 * kHour), 2 * kHour),  // (3,4) wait 2h
  };
  const JobClassGrid g = class_grid(outs);
  EXPECT_EQ(g.count[0][0], 2u);
  EXPECT_DOUBLE_EQ(g.avg_wait_h[0][0], 2.0);
  EXPECT_EQ(g.count[3][4], 1u);
  EXPECT_DOUBLE_EQ(g.avg_wait_h[3][4], 2.0);
  EXPECT_EQ(g.count[1][1], 0u);
  EXPECT_DOUBLE_EQ(g.avg_wait_h[1][1], 0.0);
}

TEST(JobClass, Labels) {
  EXPECT_EQ(node_class_label(0), "N=1");
  EXPECT_EQ(node_class_label(4), "N=65-128");
  EXPECT_EQ(runtime_class_label(0), "T<=10m");
  EXPECT_EQ(runtime_class_label(4), "T>8h");
}

TEST(TraceMix, RangeBoundaries) {
  EXPECT_EQ(mix_range(1), 0u);
  EXPECT_EQ(mix_range(2), 1u);
  EXPECT_EQ(mix_range(3), 2u);
  EXPECT_EQ(mix_range(4), 2u);
  EXPECT_EQ(mix_range(5), 3u);
  EXPECT_EQ(mix_range(8), 3u);
  EXPECT_EQ(mix_range(16), 4u);
  EXPECT_EQ(mix_range(32), 5u);
  EXPECT_EQ(mix_range(64), 6u);
  EXPECT_EQ(mix_range(128), 7u);
  EXPECT_EQ(mix_range_label(2), "3-4");
}

TEST(TraceMix, FractionsSumToOne) {
  const Trace t = trace_of({job(0, 0, 1, kHour), job(1, 0, 2, kHour),
                            job(2, 0, 64, 2 * kHour)},
                           128, 0, 4 * kHour);
  const TraceMix mix = trace_mix(t);
  EXPECT_EQ(mix.total_jobs, 3u);
  double job_sum = 0.0, demand_sum = 0.0;
  for (std::size_t r = 0; r < kMixRanges; ++r) {
    job_sum += mix.job_fraction[r];
    demand_sum += mix.demand_fraction[r];
  }
  EXPECT_NEAR(job_sum, 1.0, 1e-12);
  EXPECT_NEAR(demand_sum, 1.0, 1e-12);
  // 64-node 2h job dominates the demand.
  EXPECT_GT(mix.demand_fraction[6], 0.95);
}

TEST(TraceMix, OfferedLoadMatchesTrace) {
  const Trace t = trace_of({job(0, 0, 64, kHour)}, 128, 0, kHour);
  EXPECT_DOUBLE_EQ(trace_mix(t).offered_load, 0.5);
}

TEST(RuntimeMix, ShortAndLongBands) {
  const Trace t = trace_of(
      {job(0, 0, 1, 30 * kMinute),            // short, class 0
       job(1, 0, 2, 6 * kHour),               // long, class 1
       job(2, 0, 16, 2 * kHour),              // neither, class 3
       job(3, 0, 100, kHour)},                // short (exactly 1h), class 4
      128, 0, 10 * kHour);
  const RuntimeMix mix = runtime_mix(t);
  EXPECT_DOUBLE_EQ(mix.short_fraction[0], 0.25);
  EXPECT_DOUBLE_EQ(mix.short_fraction[4], 0.25);
  EXPECT_DOUBLE_EQ(mix.long_fraction[1], 0.25);
  EXPECT_DOUBLE_EQ(mix.short_total, 0.5);
  EXPECT_DOUBLE_EQ(mix.long_total, 0.25);
}

TEST(RuntimeMix, ClassBoundaries) {
  EXPECT_EQ(runtime_mix_class(1), 0u);
  EXPECT_EQ(runtime_mix_class(2), 1u);
  EXPECT_EQ(runtime_mix_class(3), 2u);
  EXPECT_EQ(runtime_mix_class(8), 2u);
  EXPECT_EQ(runtime_mix_class(9), 3u);
  EXPECT_EQ(runtime_mix_class(32), 3u);
  EXPECT_EQ(runtime_mix_class(33), 4u);
  EXPECT_EQ(runtime_mix_class_label(4), "33-128");
}

}  // namespace
}  // namespace sbs
