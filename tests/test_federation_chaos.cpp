// Federation fault tolerance: member blackouts and meta<->member link
// partitions driven by a seeded ChaosSchedule. Deterministic scenarios pin
// the failover/re-home/reconcile mechanics (FCFS identity across re-homes,
// dedupe of a completion that happened behind a partition, race resolution
// when both copies ran), and a seeded sweep proves the exactly-once ledger
// invariants over hundreds of randomized schedules — Federation::run()
// throws if any invariant breaks, so a clean return IS the assertion.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exp/policy_factory.hpp"
#include "fed/federation.hpp"
#include "fed/meta_scheduler.hpp"
#include "sim/faults.hpp"
#include "sim/snapshot.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::job;
using test::trace_of;

std::uint64_t fuzz_iters() {
  if (const char* env = std::getenv("SBS_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 8;  // tier-1 default: seconds, not minutes
}

fed::FederationResult run_chaos(const Trace& trace,
                                std::vector<fed::MemberSpec> members,
                                const std::string& policy,
                                const std::string& meta_spec,
                                const ChaosSchedule* chaos,
                                fed::FederationConfig fc = {}) {
  fc.members = std::move(members);
  fc.chaos = chaos;
  const auto factory = make_policy_factory(policy, /*node_limit=*/100);
  const auto meta = fed::make_meta(meta_spec);
  fed::Federation federation(trace, factory, *meta, fc);
  return federation.run();
}

// Four serial 8-wide jobs round-robined over two 8-node members; member b
// blacks out with one job running and one waiting. The failover must kill
// and re-home both onto the survivor, where they start in original-submit
// (FCFS) order interleaved with the survivor's own queue.
TEST(FederationChaos, BlackoutRehomesWaitingJobsInFcfsOrder) {
  const Trace trace = trace_of(
      {
          job(0, 0, 8, 400),   // -> a, runs immediately
          job(1, 10, 8, 400),  // -> b, killed by the blackout
          job(2, 20, 8, 400),  // -> a, waits behind job 0
          job(3, 30, 8, 400),  // -> b, waiting when the lights go out
      },
      8);
  const ChaosSchedule chaos = ChaosSchedule::from_events({
      ChaosEvent{50, ChaosKind::MemberDown, 1},
      ChaosEvent{6000, ChaosKind::MemberUp, 1},
  });
  const fed::FederationResult fr =
      run_chaos(trace, {{"a", 8, nullptr}, {"b", 8, nullptr}}, "FCFS-BF",
                "rr", &chaos);

  EXPECT_EQ(fr.chaos_events, 2u);
  EXPECT_EQ(fr.failovers, 1u);
  EXPECT_EQ(fr.rehomes, 2u);
  EXPECT_EQ(fr.dedupes, 0u);
  EXPECT_EQ(fr.duplicate_runs, 0u);

  ASSERT_EQ(fr.outcomes.size(), 4u);
  for (const JobOutcome& o : fr.outcomes) {
    EXPECT_TRUE(o.completed) << "job " << o.job.id;
    EXPECT_GT(o.end, o.start) << "job " << o.job.id;
  }
  // Both of b's jobs now live on the survivor...
  EXPECT_EQ(fr.owner[1], 0);
  EXPECT_EQ(fr.owner[3], 0);
  // ...and the survivor drained its merged queue in historical submit
  // order: job 1 (submit 10) before job 2 (submit 20) before job 3.
  EXPECT_LT(fr.outcomes[1].start, fr.outcomes[2].start);
  EXPECT_LT(fr.outcomes[2].start, fr.outcomes[3].start);
}

// A job completes behind a link partition while its speculative re-homed
// copy is still queued on the survivor. Healing the link must dedupe the
// copy — one canonical execution, owned by the partitioned member.
TEST(FederationChaos, CompletionBehindPartitionIsDedupedOnHeal) {
  const Trace trace = trace_of(
      {
          job(0, 0, 8, 3000),  // -> a, pins the survivor until t=3000
          job(1, 10, 8, 300),  // -> b, running when the link cuts
          job(2, 15, 8, 3000),  // -> a, queued
          job(3, 20, 8, 300),  // -> b, waiting at LinkDown: speculated
      },
      8);
  const ChaosSchedule chaos = ChaosSchedule::from_events({
      ChaosEvent{30, ChaosKind::LinkDown, 1},
      ChaosEvent{2000, ChaosKind::LinkUp, 1},
  });
  const fed::FederationResult fr =
      run_chaos(trace, {{"a", 8, nullptr}, {"b", 8, nullptr}}, "FCFS-BF",
                "rr", &chaos);

  EXPECT_EQ(fr.failovers, 1u);
  EXPECT_GE(fr.rehomes, 1u);
  EXPECT_EQ(fr.dedupes, 1u);
  EXPECT_EQ(fr.duplicate_runs, 0u);
  // Job 3 ran exactly once, behind the partition, on its original member.
  EXPECT_EQ(fr.owner[3], 1);
  EXPECT_TRUE(fr.outcomes[3].completed);
  EXPECT_LT(fr.outcomes[3].end, 2000)
      << "the canonical run happened inside the partition window";
  for (const JobOutcome& o : fr.outcomes) EXPECT_TRUE(o.completed);
}

// Same shape, but the survivor is idle, so the speculative copy actually
// executes before the link heals: a genuine duplicate run. Reconciliation
// must commit exactly one side (the earlier finisher) and count the race.
TEST(FederationChaos, PartitionRaceCommitsExactlyOneExecution) {
  const Trace trace = trace_of(
      {
          job(0, 0, 8, 100),   // -> a, frees the survivor early
          job(1, 10, 8, 300),  // -> b, running at LinkDown
          job(2, 15, 8, 100),  // -> a
          job(3, 20, 8, 300),  // -> b, waiting: both sides will run it
      },
      8);
  const ChaosSchedule chaos = ChaosSchedule::from_events({
      ChaosEvent{30, ChaosKind::LinkDown, 1},
      ChaosEvent{2000, ChaosKind::LinkUp, 1},
  });
  const fed::FederationResult fr =
      run_chaos(trace, {{"a", 8, nullptr}, {"b", 8, nullptr}}, "FCFS-BF",
                "rr", &chaos);

  EXPECT_EQ(fr.duplicate_runs, 1u);
  ASSERT_EQ(fr.outcomes.size(), 4u);
  for (const JobOutcome& o : fr.outcomes) EXPECT_TRUE(o.completed);
  // The merged outcome is the winner's — whichever copy finished first —
  // and the owner map points at that member. The survivor's copy started
  // no later than t=200 and b's original no earlier than t=310, so the
  // survivor must have won the race.
  EXPECT_EQ(fr.owner[3], 0);
  EXPECT_LT(fr.outcomes[3].end, 610);
}

// The invariant sweep: hundreds of seeded (workload, layout, meta, chaos)
// combinations. check_invariants() runs inside Federation::run() after
// every schedule — exactly-once ledger balance, no limbo leaks, no open
// speculations, completion counts — so every clean return certifies one
// schedule. SBS_FUZZ_ITERS scales the sweep up in scheduled CI.
TEST(FederationChaos, SeededSweepHoldsExactlyOnceInvariants) {
  const std::uint64_t iters = std::max<std::uint64_t>(200, fuzz_iters() * 25);
  const char* metas[] = {"rr", "least-loaded", "best-fit"};
  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    Rng rng(0xc4a05u + iter);

    // Random federation layout: 2-4 members, 8-24 nodes each.
    const int n_members = static_cast<int>(rng.uniform_int(2, 4));
    std::vector<fed::MemberSpec> members;
    int widest = 0;
    for (int m = 0; m < n_members; ++m) {
      const int nodes = static_cast<int>(rng.uniform_int(8, 24));
      widest = std::max(widest, nodes);
      members.push_back({"m" + std::to_string(m), nodes, nullptr});
    }

    // Random workload: 25-40 jobs, every width fits the widest member.
    const int n_jobs = static_cast<int>(rng.uniform_int(25, 40));
    std::vector<Job> jobs;
    Time submit = 0;
    for (int j = 0; j < n_jobs; ++j) {
      submit += static_cast<Time>(rng.uniform_int(0, 399));
      const int nodes = static_cast<int>(rng.uniform_int(1, widest));
      const Time runtime = static_cast<Time>(rng.uniform_int(50, 1500));
      jobs.push_back(job(j, submit, nodes, runtime));
    }
    const Trace trace = trace_of(jobs, widest);
    const Time horizon = submit + 4000;

    // Random chaos shape: outages, partitions, or both.
    ChaosSpec spec;
    const std::int64_t shape = rng.uniform_int(0, 2);
    if (shape != 1) {
      spec.outage_mtbf = horizon / 4;
      spec.outage_mttr = std::max<Time>(1, horizon / 20);
    }
    if (shape != 0) {
      spec.partition_mtbf = horizon / 4;
      spec.partition_mttr = std::max<Time>(1, horizon / 20);
    }
    spec.seed = 7000 + iter;
    const ChaosSchedule chaos =
        ChaosSchedule::from_spec(spec, 0, horizon, n_members);

    const std::string policy = iter % 10 == 0 ? "DDS/lxf/dynB" : "FCFS-BF";
    const fed::FederationResult fr = run_chaos(
        trace, members, policy, metas[iter % 3], &chaos);
    ASSERT_EQ(fr.outcomes.size(), jobs.size());
    for (const JobOutcome& o : fr.outcomes)
      ASSERT_TRUE(o.completed) << "job " << o.job.id << " lost";
  }
}

// Chaos-aware checkpointing: a snapshot captured while a member is dark
// must resume to a bit-identical schedule — outage flags, health state,
// limbo, the ledger and every fault-tolerance counter all survive the
// round trip through FederationSnapshot.
TEST(FederationChaos, MidOutageResumeIsBitIdentical) {
  std::vector<Job> jobs;
  Time submit = 0;
  for (int j = 0; j < 20; ++j) {
    submit = j * 40;
    jobs.push_back(job(j, submit, 1 + j % 6, 200 + 100 * (j % 5)));
  }
  const Trace trace = trace_of(jobs, 12);
  const ChaosSchedule chaos = ChaosSchedule::from_events({
      ChaosEvent{300, ChaosKind::MemberDown, 1},
      ChaosEvent{4000, ChaosKind::MemberUp, 1},
  });
  const std::vector<fed::MemberSpec> members = {{"a", 12, nullptr},
                                                {"b", 6, nullptr}};

  const fed::FederationResult reference =
      run_chaos(trace, members, "FCFS-BF", "rr", &chaos);
  EXPECT_GE(reference.failovers, 1u);

  // Re-run with checkpointing; keep the first snapshot taken mid-outage.
  sim::FederationSnapshot kept;
  bool have = false;
  fed::FederationConfig writing;
  writing.checkpoint_every = 5;
  writing.checkpoint_sink = [&](const sim::FederationSnapshot& snap) {
    if (have) return;
    const bool dark = std::any_of(snap.member_down.begin(),
                                  snap.member_down.end(),
                                  [](std::uint8_t d) { return d != 0; });
    if (!dark) return;
    kept = snap;
    have = true;
  };
  const fed::FederationResult full =
      run_chaos(trace, members, "FCFS-BF", "rr", &chaos, writing);
  ASSERT_TRUE(have) << "no checkpoint landed inside the outage window";

  fed::FederationConfig resuming;
  resuming.resume = &kept;
  const fed::FederationResult resumed =
      run_chaos(trace, members, "FCFS-BF", "rr", &chaos, resuming);

  auto expect_identical = [](const fed::FederationResult& x,
                             const fed::FederationResult& y) {
    ASSERT_EQ(x.outcomes.size(), y.outcomes.size());
    for (std::size_t i = 0; i < y.outcomes.size(); ++i) {
      SCOPED_TRACE("job " + std::to_string(y.outcomes[i].job.id));
      EXPECT_EQ(x.outcomes[i].start, y.outcomes[i].start);
      EXPECT_EQ(x.outcomes[i].end, y.outcomes[i].end);
      EXPECT_EQ(x.outcomes[i].requeue_count, y.outcomes[i].requeue_count);
      EXPECT_EQ(x.outcomes[i].completed, y.outcomes[i].completed);
    }
    EXPECT_EQ(x.owner, y.owner);
    EXPECT_EQ(x.migrations, y.migrations);
    EXPECT_EQ(x.chaos_events, y.chaos_events);
    EXPECT_EQ(x.failovers, y.failovers);
    EXPECT_EQ(x.rehomes, y.rehomes);
    EXPECT_EQ(x.dedupes, y.dedupes);
    EXPECT_EQ(x.duplicate_runs, y.duplicate_runs);
    ASSERT_EQ(x.members.size(), y.members.size());
    for (std::size_t i = 0; i < y.members.size(); ++i) {
      EXPECT_EQ(x.members[i].routed, y.members[i].routed);
      EXPECT_EQ(x.members[i].migrations_in, y.members[i].migrations_in);
      EXPECT_EQ(x.members[i].migrations_out, y.members[i].migrations_out);
    }
  };
  expect_identical(full, reference);     // checkpointing must not perturb
  expect_identical(resumed, reference);  // the resumed tail matches
}

}  // namespace
}  // namespace sbs
