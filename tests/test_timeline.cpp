#include "metrics/timeline.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sbs {
namespace {

using test::job;

JobOutcome outcome(Job j, Time start) {
  JobOutcome o;
  o.job = j;
  o.start = start;
  o.end = start + j.runtime;
  return o;
}

TEST(UtilizationTimeline, SingleJobStep) {
  std::vector<JobOutcome> outs = {outcome(job(0, 0, 4, 100), 10)};
  const auto tl = utilization_timeline(outs);
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].time, 10);
  EXPECT_EQ(tl[0].value, 4);
  EXPECT_EQ(tl[1].time, 110);
  EXPECT_EQ(tl[1].value, 0);
}

TEST(UtilizationTimeline, OverlapsStack) {
  std::vector<JobOutcome> outs = {outcome(job(0, 0, 2, 100), 0),
                                  outcome(job(1, 0, 3, 100), 50)};
  const auto tl = utilization_timeline(outs);
  ASSERT_EQ(tl.size(), 4u);
  EXPECT_EQ(tl[0].value, 2);   // t=0
  EXPECT_EQ(tl[1].value, 5);   // t=50
  EXPECT_EQ(tl[2].value, 3);   // t=100
  EXPECT_EQ(tl[3].value, 0);   // t=150
}

TEST(UtilizationTimeline, CoincidentStartAndEndCollapse) {
  std::vector<JobOutcome> outs = {outcome(job(0, 0, 2, 100), 0),
                                  outcome(job(1, 0, 2, 50), 100)};
  const auto tl = utilization_timeline(outs);
  // At t=100 job 0 ends and job 1 starts: one point, value 2.
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[1].time, 100);
  EXPECT_EQ(tl[1].value, 2);
}

TEST(QueueTimeline, CountsWaitIntervals) {
  std::vector<JobOutcome> outs = {
      outcome(job(0, 0, 2, 100), 0),    // never queued -> no interval
      outcome(job(1, 10, 2, 50), 60),   // queued [10, 60)
      outcome(job(2, 20, 2, 50), 60),   // queued [20, 60)
  };
  const auto tl = queue_timeline(outs);
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].time, 10);
  EXPECT_EQ(tl[0].value, 1);
  EXPECT_EQ(tl[1].time, 20);
  EXPECT_EQ(tl[1].value, 2);
  EXPECT_EQ(tl[2].time, 60);
  EXPECT_EQ(tl[2].value, 0);
}

TEST(TimelineAverage, WeightsBySpan) {
  std::vector<TimelinePoint> tl = {{0, 4}, {50, 8}, {100, 0}};
  EXPECT_DOUBLE_EQ(timeline_average(tl, 0, 100), 6.0);
  EXPECT_DOUBLE_EQ(timeline_average(tl, 0, 200), 3.0);   // 0 beyond 100
  EXPECT_DOUBLE_EQ(timeline_average(tl, 25, 75), 6.0);
}

TEST(TimelineAverage, WindowBeforeFirstPointIsZero) {
  std::vector<TimelinePoint> tl = {{100, 4}};
  EXPECT_DOUBLE_EQ(timeline_average(tl, 0, 50), 0.0);
}

TEST(TimelinePeak, FindsMaximumInWindow) {
  std::vector<TimelinePoint> tl = {{0, 2}, {10, 9}, {20, 1}};
  EXPECT_EQ(timeline_peak(tl, 0, 30), 9);
  EXPECT_EQ(timeline_peak(tl, 20, 30), 1);
  EXPECT_EQ(timeline_peak(tl, 0, 10), 2);
}

TEST(AverageUtilization, FractionOfCapacity) {
  std::vector<JobOutcome> outs = {outcome(job(0, 0, 4, 100), 0)};
  EXPECT_DOUBLE_EQ(average_utilization(outs, 8, 0, 100), 0.5);
  EXPECT_DOUBLE_EQ(average_utilization(outs, 8, 0, 200), 0.25);
}

TEST(DailyUtilization, OneEntryPerDay) {
  std::vector<JobOutcome> outs = {outcome(job(0, 0, 8, kDay), 0)};
  const auto days = daily_utilization(outs, 8, 0, 2 * kDay);
  ASSERT_EQ(days.size(), 2u);
  EXPECT_DOUBLE_EQ(days[0], 1.0);
  EXPECT_DOUBLE_EQ(days[1], 0.0);
}

TEST(Timeline, EmptyOutcomes) {
  EXPECT_TRUE(utilization_timeline({}).empty());
  EXPECT_TRUE(queue_timeline({}).empty());
  EXPECT_DOUBLE_EQ(average_utilization({}, 8, 0, 100), 0.0);
}

}  // namespace
}  // namespace sbs
