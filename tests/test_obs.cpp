// Telemetry subsystem tests: instrument semantics, snapshot isolation,
// the JSON writer/parser pair, the JSONL sink, and — most importantly —
// end-to-end reconciliation: every aggregate `sbsched report` rebuilds
// from the event stream must equal the live SimResult exactly.

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/search_scheduler.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "policies/backfill.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace sbs {
namespace {

using test::job;
using test::trace_of;

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Counter, AccumulatesAdds) {
  obs::Counter c("events");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.name(), "events");
}

TEST(Gauge, TracksLastValueAndMax) {
  obs::Gauge g("depth");
  g.set(3);
  g.set(17);
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max(), 17);
}

TEST(Histogram, PlacesValuesInInclusiveBuckets) {
  const double bounds[] = {1.0, 10.0, 100.0};
  obs::Histogram h("lat", bounds);
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper bound)
  h.observe(10.0);   // <= 10
  h.observe(99.0);   // <= 100
  h.observe(1000.0); // overflow

  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 buckets + overflow
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 10.0 + 99.0 + 1000.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_DOUBLE_EQ(s.mean(), s.sum / 5.0);
}

TEST(MetricsRegistry, ReturnsSameInstrumentPerName) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);

  const double bounds[] = {1.0, 2.0};
  obs::Histogram& h1 = reg.histogram("h", bounds);
  obs::Histogram& h2 = reg.histogram("h", {});  // bounds ignored on reuse
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, SnapshotIsIsolatedFromLaterUpdates) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("n");
  obs::Gauge& g = reg.gauge("q");
  const double bounds[] = {10.0};
  obs::Histogram& h = reg.histogram("t", bounds);
  c.add(5);
  g.set(2);
  h.observe(3.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  c.add(100);
  g.set(99);
  h.observe(50.0);

  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 2);
  EXPECT_EQ(snap.gauges[0].max, 2);
  EXPECT_TRUE(snap.gauges[0].ever_set);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 3.0);
}

TEST(MetricsSnapshot, ToJsonParses) {
  obs::MetricsRegistry reg;
  reg.counter("sim.decisions").add(3);
  reg.gauge("sim.queue_depth").set(4);
  const double bounds[] = {1.0, 5.0};
  reg.histogram("search.think", bounds).observe(2.0);

  const obs::JsonValue v = obs::parse_json(reg.snapshot().to_json());
  ASSERT_TRUE(v.is_object());
  const obs::JsonValue* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("sim.decisions"), nullptr);
  EXPECT_EQ(counters->find("sim.decisions")->as_int(), 3);
  const obs::JsonValue* hists = v.find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_NE(hists->find("search.think"), nullptr);
}

// ---------------------------------------------------------------------------
// JSON writer and parser

TEST(JsonWriter, EmitsCompactNestedDocument) {
  obs::JsonWriter w;
  w.begin_object()
      .field("type", "decision")
      .field("ok", true)
      .field("n", std::uint64_t{7})
      .key("xs")
      .begin_array()
      .value(1)
      .value(2)
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(), R"({"type":"decision","ok":true,"n":7,"xs":[1,2]})");
}

TEST(JsonWriter, EscapesStringsAndRoundTrips) {
  obs::JsonWriter w;
  w.begin_object().field("s", "a\"b\\c\nd\ttab").end_object();
  const obs::JsonValue v = obs::parse_json(w.str());
  ASSERT_NE(v.find("s"), nullptr);
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\\c\nd\ttab");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(obs::parse_json("{"), Error);
  EXPECT_THROW(obs::parse_json("{\"a\":1} trailing"), Error);
  EXPECT_THROW(obs::parse_json("[1,]"), Error);
  EXPECT_THROW(obs::parse_json(""), Error);
}

TEST(JsonParser, ParsesNumbersAndNull) {
  const obs::JsonValue v =
      obs::parse_json(R"({"a":-2.5,"b":1e3,"c":null,"d":false})");
  EXPECT_DOUBLE_EQ(v.find("a")->as_double(), -2.5);
  EXPECT_DOUBLE_EQ(v.find("b")->as_double(), 1000.0);
  EXPECT_EQ(v.find("c")->kind, obs::JsonValue::Kind::Null);
  EXPECT_FALSE(v.find("d")->as_bool());
}

// ---------------------------------------------------------------------------
// JSONL sink

TEST(JsonlSink, WritesOneLinePerRecord) {
  const std::string path =
      testing::TempDir() + "/sbs_test_sink.jsonl";
  {
    obs::JsonlSink sink(path);
    sink.write(R"({"a":1})");
    sink.write(R"({"b":2})");
    EXPECT_EQ(sink.lines_written(), 2u);
  }  // destructor flushes
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], R"({"a":1})");
  EXPECT_EQ(lines[1], R"({"b":2})");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end: simulate with telemetry, then reconcile the event stream

Trace bursty_trace() {
  // Enough contention that the search actually explores: bursts of mixed
  // widths on a small machine.
  std::vector<Job> jobs;
  int id = 0;
  for (int burst = 0; burst < 6; ++burst) {
    const Time t = burst * 600;
    jobs.push_back(job(id++, t, 8, 1800));
    jobs.push_back(job(id++, t, 4, 900));
    jobs.push_back(job(id++, t + 60, 2, 3600));
    jobs.push_back(job(id++, t + 120, 14, 600));
  }
  return trace_of(std::move(jobs), 16);
}

struct TelemetryRun {
  SimResult result;
  std::string policy_name;
  std::vector<obs::JsonValue> records;
  obs::RunReport report;
};

TelemetryRun run_with_telemetry(const Trace& trace, Scheduler& scheduler,
                                SimConfig sim, const std::string& tag) {
  const std::string path = testing::TempDir() + "/sbs_tel_" + tag + ".jsonl";
  obs::Telemetry tel(std::make_unique<obs::JsonlSink>(path));
  sim.telemetry = &tel;

  TelemetryRun out;
  out.result = simulate(trace, scheduler, sim);
  out.policy_name = scheduler.name();

  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) out.records.push_back(obs::parse_json(line));

  const std::vector<obs::RunReport> runs = obs::summarize_telemetry(path);
  EXPECT_EQ(runs.size(), 1u);
  out.report = runs.front();
  std::remove(path.c_str());
  return out;
}

// Every record type carries its documented fields (spot-check the schema).
void check_schema(const std::vector<obs::JsonValue>& records) {
  static const std::set<std::string> known = {
      "run", "decision", "submit", "start", "finish",
      "kill", "unstarted", "fault"};
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().find("type")->as_string(), "run");
  for (const obs::JsonValue& rec : records) {
    ASSERT_TRUE(rec.is_object());
    const obs::JsonValue* type = rec.find("type");
    ASSERT_NE(type, nullptr);
    ASSERT_TRUE(known.count(type->as_string()))
        << "unknown record type " << type->as_string();
    if (type->as_string() == "decision") {
      for (const char* key :
           {"t", "policy", "queue_depth", "free_nodes", "capacity",
            "max_wait_h", "nodes_visited", "paths_explored", "iterations",
            "discrepancies", "deadline_hit", "think_us", "threads_used",
            "cache_hits", "cache_misses", "cache_invalidations",
            "warm_start_used", "pruned_twins", "pruned_bound", "started",
            "worker_nodes", "improvements"})
        EXPECT_NE(rec.find(key), nullptr) << "decision lacks " << key;
    } else if (type->as_string() != "run") {
      EXPECT_NE(rec.find("t"), nullptr);
    }
  }
}

// The reconstructed aggregates must equal the live run's exactly — the
// decision records carry per-decision deltas of SchedulerStats, so the
// sums match by construction, and any drift is an instrumentation bug.
void check_reconciliation(const TelemetryRun& run, const Trace& trace) {
  const SchedulerStats& live = run.result.sched_stats;
  const obs::RunReport& rep = run.report;

  EXPECT_EQ(rep.trace, trace.name);
  EXPECT_EQ(rep.policy, run.policy_name);
  EXPECT_EQ(rep.capacity, trace.capacity);
  EXPECT_EQ(rep.trace_jobs, trace.jobs.size());

  EXPECT_EQ(rep.decisions, live.decisions);
  EXPECT_EQ(rep.nodes_visited, live.nodes_visited);
  EXPECT_EQ(rep.paths_explored, live.paths_explored);
  EXPECT_EQ(rep.think_time_us, live.think_time_us);
  EXPECT_EQ(rep.deadline_hits, live.deadline_hits);
  EXPECT_EQ(rep.max_think_time_us, live.max_think_time_us);
  EXPECT_EQ(rep.max_queue_depth, live.max_queue_depth);
  EXPECT_EQ(rep.cache_hits, live.cache_hits);
  EXPECT_EQ(rep.cache_misses, live.cache_misses);
  EXPECT_EQ(rep.cache_invalidations, live.cache_invalidations);
  EXPECT_EQ(rep.warm_starts, live.warm_starts);
  EXPECT_EQ(rep.pruned_twins, live.pruned_twins);
  EXPECT_EQ(rep.pruned_bound, live.pruned_bound);

  EXPECT_EQ(rep.submits, trace.jobs.size());
  EXPECT_EQ(rep.starts, rep.started_via_decisions);

  const FaultStats& faults = run.result.fault_stats;
  EXPECT_EQ(rep.kills, faults.jobs_killed);
  EXPECT_EQ(rep.requeues, faults.jobs_requeued);
  EXPECT_EQ(rep.unstarted, faults.jobs_unstarted);
  EXPECT_EQ(rep.faults_down, faults.node_failures);
  EXPECT_EQ(rep.faults_up, faults.node_recoveries);

  // Every started attempt terminates as exactly one finish or one kill
  // (the drain completes all surviving runs).
  EXPECT_EQ(rep.starts, rep.finishes + rep.kills);
}

TEST(TelemetryEndToEnd, SearchPolicyStreamReconciles) {
  const Trace trace = bursty_trace();
  SearchSchedulerConfig cfg;
  cfg.search.node_limit = 500;
  SearchScheduler scheduler(cfg);

  const TelemetryRun run = run_with_telemetry(trace, scheduler, {}, "search");
  check_schema(run.records);
  check_reconciliation(run, trace);

  // Fault-free run: every job starts and finishes exactly once.
  EXPECT_EQ(run.report.starts, trace.jobs.size());
  EXPECT_EQ(run.report.finishes, trace.jobs.size());
  EXPECT_EQ(run.report.kills, 0u);
  EXPECT_EQ(run.report.unstarted, 0u);

  // A search policy reports search evidence: visited nodes, improvements,
  // and winning-path discrepancy counts on searched decisions.
  EXPECT_GT(run.report.nodes_visited, 0u);
  EXPECT_GT(run.report.improvements_total, 0u);
  EXPECT_GT(run.report.decisions_with_search, 0u);

  // Lifecycle events appear exactly once per transition.
  std::set<int> started_ids;
  for (const obs::JsonValue& rec : run.records) {
    if (rec.find("type")->as_string() != "start") continue;
    const int id = static_cast<int>(rec.find("job")->as_int());
    EXPECT_TRUE(started_ids.insert(id).second)
        << "job " << id << " started twice without a kill";
  }
  EXPECT_EQ(started_ids.size(), trace.jobs.size());
}

TEST(TelemetryEndToEnd, BackfillPolicyStreamReconciles) {
  const Trace trace = bursty_trace();
  BackfillScheduler scheduler;

  const TelemetryRun run =
      run_with_telemetry(trace, scheduler, {}, "backfill");
  check_schema(run.records);
  check_reconciliation(run, trace);

  // Non-search policy: zero search counters, every decision discrepancy
  // field is the -1 sentinel (so none count as search decisions).
  EXPECT_EQ(run.report.nodes_visited, 0u);
  EXPECT_EQ(run.report.decisions_with_search, 0u);
  for (const obs::JsonValue& rec : run.records) {
    if (rec.find("type")->as_string() != "decision") continue;
    EXPECT_EQ(rec.find("discrepancies")->as_int(), -1);
  }
}

TEST(TelemetryEndToEnd, FaultRunRecordsKillsAndFaults) {
  const Trace trace = bursty_trace();
  // Deterministic fault script: take 8 nodes down mid-run, restore later.
  FaultInjector injector = FaultInjector::from_events({
      FaultEvent{900, FaultKind::NodeDown, 8, -1, 0},
      FaultEvent{2400, FaultKind::NodeUp, 8, -1, 0},
  });
  SimConfig sim;
  sim.faults = &injector;

  SearchSchedulerConfig cfg;
  cfg.search.node_limit = 200;
  SearchScheduler scheduler(cfg);
  const TelemetryRun run =
      run_with_telemetry(trace, scheduler, sim, "faults");
  check_schema(run.records);
  check_reconciliation(run, trace);

  EXPECT_EQ(run.report.faults_down, 1u);
  EXPECT_EQ(run.report.faults_up, 1u);
  EXPECT_EQ(run.report.kills, run.result.fault_stats.jobs_killed);
  // Requeued jobs start again: start records exceed submits by the number
  // of restarts.
  EXPECT_EQ(run.report.starts,
            trace.jobs.size() + run.report.requeues - run.report.unstarted);
}

TEST(TelemetryEndToEnd, MetricsOnlyModeNeedsNoSink) {
  const Trace trace = bursty_trace();
  BackfillScheduler scheduler;
  obs::Telemetry tel;  // no sink: registry only
  SimConfig sim;
  sim.telemetry = &tel;
  const SimResult r = simulate(trace, scheduler, sim);

  EXPECT_FALSE(tel.has_sink());
  const obs::MetricsSnapshot snap = tel.metrics().snapshot();
  const auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& c : snap.counters)
      if (c.name == name) return c.value;
    return 0;
  };
  EXPECT_EQ(counter("sim.decisions"), r.sched_stats.decisions);
  EXPECT_EQ(counter("sim.jobs.submitted"), trace.jobs.size());
  EXPECT_EQ(counter("sim.jobs.started"), trace.jobs.size());
  EXPECT_EQ(counter("sim.jobs.finished"), trace.jobs.size());
}

// ---------------------------------------------------------------------------
// Externally rotated streams: records cut at a segment boundary

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One reconciling stream as raw bytes plus its single-file summary.
struct SplitFixture {
  std::string bytes;
  obs::TelemetrySummary whole;
};

SplitFixture stream_fixture() {
  const Trace trace = bursty_trace();
  SearchSchedulerConfig cfg;
  cfg.search.node_limit = 200;
  SearchScheduler scheduler(cfg);
  const std::string path = testing::TempDir() + "/sbs_tel_fixture.jsonl";
  {
    obs::Telemetry tel(std::make_unique<obs::JsonlSink>(path));
    SimConfig sim;
    sim.telemetry = &tel;
    simulate(trace, scheduler, sim);
  }
  SplitFixture f;
  std::ifstream in(path, std::ios::binary);
  f.bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  f.whole = obs::read_telemetry(path);
  std::remove(path.c_str());
  return f;
}

void expect_same_run(const obs::TelemetrySummary& got,
                     const obs::TelemetrySummary& want) {
  ASSERT_EQ(got.runs.size(), want.runs.size());
  const obs::RunReport& a = got.runs.front();
  const obs::RunReport& b = want.runs.front();
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.submits, b.submits);
  EXPECT_EQ(a.starts, b.starts);
  EXPECT_EQ(a.finishes, b.finishes);
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.think_time_us, b.think_time_us);
}

TEST(TelemetryReport, StitchesRecordCutMidDecisionAcrossSegments) {
  const SplitFixture f = stream_fixture();
  // Cut INSIDE a decision record, the way an external rotation (logrotate
  // copying mid-write) can: the dangling tail of segment 0 and the head of
  // segment 1 must reassemble into one record.
  const std::size_t rec = f.bytes.find("\"type\":\"decision\"");
  ASSERT_NE(rec, std::string::npos);
  const std::size_t cut = rec + 8;  // mid-way through the type field itself
  const std::string a = testing::TempDir() + "/sbs_tel_split_a.jsonl";
  const std::string b = testing::TempDir() + "/sbs_tel_split_b.jsonl";
  write_file(a, std::string_view(f.bytes).substr(0, cut));
  write_file(b, std::string_view(f.bytes).substr(cut));

  const obs::TelemetrySummary split = obs::read_telemetry_files({a, b});
  EXPECT_EQ(split.stitched_records, 1u);
  EXPECT_EQ(split.torn_records, 0u);
  expect_same_run(split, f.whole);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TelemetryReport, CleanSegmentBoundaryNeedsNoStitch) {
  const SplitFixture f = stream_fixture();
  // Cut exactly after a newline: both segments hold whole lines.
  const std::size_t cut = f.bytes.find('\n', f.bytes.size() / 2);
  ASSERT_NE(cut, std::string::npos);
  const std::string a = testing::TempDir() + "/sbs_tel_clean_a.jsonl";
  const std::string b = testing::TempDir() + "/sbs_tel_clean_b.jsonl";
  write_file(a, std::string_view(f.bytes).substr(0, cut + 1));
  write_file(b, std::string_view(f.bytes).substr(cut + 1));

  const obs::TelemetrySummary split = obs::read_telemetry_files({a, b});
  EXPECT_EQ(split.stitched_records, 0u);
  EXPECT_EQ(split.torn_records, 0u);
  expect_same_run(split, f.whole);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TelemetryReport, LostNewlineAtBoundaryParsesTailAlone) {
  const SplitFixture f = stream_fixture();
  // Segment 0 ends with a COMPLETE record whose newline was lost in the
  // rotation: the tail must parse alone, not be glued onto segment 1's
  // first record.
  const std::size_t cut = f.bytes.find('\n', f.bytes.size() / 2);
  ASSERT_NE(cut, std::string::npos);
  const std::string a = testing::TempDir() + "/sbs_tel_nonl_a.jsonl";
  const std::string b = testing::TempDir() + "/sbs_tel_nonl_b.jsonl";
  write_file(a, std::string_view(f.bytes).substr(0, cut));  // no newline
  write_file(b, std::string_view(f.bytes).substr(cut + 1));

  const obs::TelemetrySummary split = obs::read_telemetry_files({a, b});
  EXPECT_EQ(split.stitched_records, 0u);
  EXPECT_EQ(split.torn_records, 0u);
  expect_same_run(split, f.whole);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TelemetryReport, RejectsMalformedStreams) {
  const std::string path = testing::TempDir() + "/sbs_tel_bad.jsonl";
  {
    std::ofstream out(path);
    out << R"({"type":"decision"})" << '\n';  // before any run record
  }
  EXPECT_THROW(obs::summarize_telemetry(path), Error);
  {
    std::ofstream out(path);
    out << "not json" << '\n';
  }
  EXPECT_THROW(obs::summarize_telemetry(path), Error);
  {
    std::ofstream out(path);
    out << R"({"type":"mystery"})" << '\n';
  }
  EXPECT_THROW(obs::summarize_telemetry(path), Error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Federation streams: per-cluster slicing and fault-tolerance records

// A federation run record pre-creates one aggregate row per member, so a
// cluster that contributed zero decision records (blacked out for the
// whole run, say) still renders an all-zero row instead of vanishing from
// the per-cluster table.
TEST(TelemetryReport, FederationClusterWithNoRecordsStillGetsARow) {
  const std::string path = testing::TempDir() + "/sbs_tel_fed_rows.jsonl";
  {
    std::ofstream out(path);
    out << R"({"type":"run","trace":"synthetic","policy":"FCFS-BF",)"
        << R"("capacity":16,"jobs":2,"clusters":3})" << '\n';
    out << R"({"type":"submit","t":0,"job":0,"cluster":0})" << '\n';
    out << R"({"type":"start","t":0,"job":0,"cluster":0})" << '\n';
    out << R"({"type":"finish","t":50,"job":0,"cluster":0})" << '\n';
  }
  const std::vector<obs::RunReport> runs = obs::summarize_telemetry(path);
  ASSERT_EQ(runs.size(), 1u);
  const obs::RunReport& r = runs.front();
  EXPECT_EQ(r.clusters, 3);
  ASSERT_EQ(r.cluster_agg.size(), 3u);
  EXPECT_EQ(r.cluster_agg.at(0).submits, 1u);
  EXPECT_EQ(r.cluster_agg.at(0).finishes, 1u);
  for (const int silent : {1, 2}) {
    SCOPED_TRACE("cluster " + std::to_string(silent));
    const obs::RunReport::ClusterAgg& agg = r.cluster_agg.at(silent);
    EXPECT_EQ(agg.decisions, 0u);
    EXPECT_EQ(agg.submits, 0u);
    EXPECT_EQ(agg.starts, 0u);
    EXPECT_EQ(agg.finishes, 0u);
  }
  std::remove(path.c_str());
}

// The chaos/health/rehome/reconcile records aggregate into the run's
// fault-tolerance counters and the per-cluster failover/rehome slices;
// unknown enum values are stream errors, not silent zeros.
TEST(TelemetryReport, FaultToleranceRecordsAggregate) {
  const std::string path = testing::TempDir() + "/sbs_tel_fed_ft.jsonl";
  {
    std::ofstream out(path);
    out << R"({"type":"run","trace":"synthetic","policy":"FCFS-BF",)"
        << R"("capacity":16,"jobs":4,"clusters":2})" << '\n';
    out << R"({"type":"chaos","t":100,"event":"member-down","member":1})"
        << '\n';
    out << R"({"type":"health","t":280,"member":1,"state":"down"})" << '\n';
    out << R"({"type":"rehome","t":280,"job":3,"from":1,"to":0,"mode":"move"})"
        << '\n';
    out << R"({"type":"rehome","t":281,"job":2,"from":1,"to":0,"mode":"copy"})"
        << '\n';
    out << R"({"type":"chaos","t":900,"event":"member-up","member":1})" << '\n';
    out << R"({"type":"health","t":960,"member":1,"state":"up"})" << '\n';
    out << R"({"type":"reconcile","t":960,"job":2,"member":1,)"
        << R"("action":"dedupe"})" << '\n';
    out << R"({"type":"reconcile","t":961,"job":3,"member":0,)"
        << R"("action":"duplicate"})" << '\n';
  }
  const std::vector<obs::RunReport> runs = obs::summarize_telemetry(path);
  ASSERT_EQ(runs.size(), 1u);
  const obs::RunReport& r = runs.front();
  EXPECT_EQ(r.chaos_events, 2u);
  EXPECT_EQ(r.failovers, 1u);
  EXPECT_EQ(r.recoveries, 1u);
  EXPECT_EQ(r.rehomes, 2u);
  EXPECT_EQ(r.rehome_copies, 1u);
  EXPECT_EQ(r.reconciles, 2u);
  EXPECT_EQ(r.dedupes, 1u);
  EXPECT_EQ(r.duplicate_runs, 1u);
  EXPECT_EQ(r.cluster_agg.at(1).failovers, 1u);
  EXPECT_EQ(r.cluster_agg.at(1).rehomes_out, 2u);
  EXPECT_EQ(r.cluster_agg.at(0).rehomes_in, 2u);

  {
    std::ofstream out(path);
    out << R"({"type":"run","trace":"synthetic","policy":"FCFS-BF",)"
        << R"("capacity":16,"jobs":4,"clusters":2})" << '\n';
    out << R"({"type":"health","t":280,"member":1,"state":"sideways"})" << '\n';
  }
  EXPECT_THROW(obs::summarize_telemetry(path), Error);
  {
    std::ofstream out(path);
    out << R"({"type":"run","trace":"synthetic","policy":"FCFS-BF",)"
        << R"("capacity":16,"jobs":4,"clusters":2})" << '\n';
    out << R"({"type":"reconcile","t":960,"job":2,"member":1,)"
        << R"("action":"shrug"})" << '\n';
  }
  EXPECT_THROW(obs::summarize_telemetry(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sbs
