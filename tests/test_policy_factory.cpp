#include "exp/policy_factory.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace sbs {
namespace {

TEST(PolicyFactory, BackfillSpecs) {
  EXPECT_EQ(make_policy("FCFS-BF")->name(), "FCFS-backfill");
  EXPECT_EQ(make_policy("LXF-BF")->name(), "LXF-backfill");
  EXPECT_EQ(make_policy("SJF-BF")->name(), "SJF-backfill");
  EXPECT_EQ(make_policy("LXF&W-BF")->name(), "LXF&W-backfill");
}

TEST(PolicyFactory, ComparatorSpecs) {
  EXPECT_EQ(make_policy("Selective-BF")->name(), "Selective-backfill");
  EXPECT_EQ(make_policy("Lookahead")->name(), "Lookahead");
  EXPECT_EQ(make_policy("Slack-BF")->name(), "Slack-backfill");
  EXPECT_EQ(make_policy("FCFS-cons-BF")->name(), "FCFS-backfill(cons)");
  EXPECT_EQ(make_policy("MultiQueue")->name(), "MultiQueue(3q)");
  EXPECT_EQ(make_policy("MultiQueue-aged")->name(), "MultiQueue(3q,aged)");
  EXPECT_NE(make_policy("Weighted-BF")->name().find("Weighted"),
            std::string::npos);
}

TEST(PolicyFactory, DfsAlgoSpec) {
  EXPECT_EQ(make_policy("DFS/lxf/dynB")->name(), "DFS/lxf/dynB");
}

TEST(PolicyFactory, SearchSpecs) {
  EXPECT_EQ(make_policy("DDS/lxf/dynB")->name(), "DDS/lxf/dynB");
  EXPECT_EQ(make_policy("LDS/fcfs/dynB")->name(), "LDS/fcfs/dynB");
  EXPECT_EQ(make_policy("DDS/fcfs/w=50h")->name(), "DDS/fcfs/w=50h");
  EXPECT_EQ(make_policy("DDS/lxf/wT")->name(), "DDS/lxf/w(T)");
}

TEST(PolicyFactory, NodeLimitWiredThrough) {
  auto p = make_policy("DDS/lxf/dynB", 8000);
  auto* search = dynamic_cast<SearchScheduler*>(p.get());
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->config().search.node_limit, 8000u);
}

TEST(PolicyFactory, FixedBoundParsedInHours) {
  auto p = make_policy("DDS/lxf/w=100h");
  auto* search = dynamic_cast<SearchScheduler*>(p.get());
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->config().bound.kind, BoundKind::Fixed);
  EXPECT_EQ(search->config().bound.fixed, 100 * kHour);
}

TEST(PolicyFactory, RejectsGarbage) {
  EXPECT_THROW(make_policy("NOPE"), Error);
  EXPECT_THROW(make_policy("DDS/lxf"), Error);
  EXPECT_THROW(make_policy("XXX/lxf/dynB"), Error);
  EXPECT_THROW(make_policy("DDS/xxx/dynB"), Error);
  EXPECT_THROW(make_policy("DDS/lxf/xxx"), Error);
}

TEST(PolicyFactory, ZeroFixedBoundAccepted) {
  EXPECT_EQ(make_policy("DDS/lxf/w=0h")->name(), "DDS/lxf/w=0h");
}

TEST(PolicyFactory, HybridLocalSearchSuffix) {
  auto p = make_policy("DDS/lxf/dynB+ls");
  EXPECT_EQ(p->name(), "DDS/lxf/dynB+ls");
  auto* search = dynamic_cast<SearchScheduler*>(p.get());
  ASSERT_NE(search, nullptr);
  EXPECT_TRUE(search->config().refine);
  // Without the suffix, refinement stays off.
  auto plain = make_policy("DDS/lxf/dynB");
  EXPECT_FALSE(
      dynamic_cast<SearchScheduler*>(plain.get())->config().refine);
}

TEST(PolicyFactory, HybridSuffixComposesWithOtherBounds) {
  EXPECT_EQ(make_policy("LDS/fcfs/w=50h+ls")->name(), "LDS/fcfs/w=50h+ls");
}

}  // namespace
}  // namespace sbs
