#include "predict/predictor.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::job;
using test::trace_of;

TEST(IdentityPredictor, ReturnsRequest) {
  IdentityPredictor p;
  const Job j = job(0, 0, 4, kHour, 3 * kHour);
  EXPECT_EQ(p.predict(j), 3 * kHour);
  p.observe(j, kHour);  // no-op
  EXPECT_EQ(p.predict(j), 3 * kHour);
}

TEST(ClassCorrection, FallsBackToRequestWhenCold) {
  ClassCorrectionPredictor p;
  EXPECT_EQ(p.predict(job(0, 0, 4, kHour, 2 * kHour)), 2 * kHour);
}

TEST(ClassCorrection, LearnsBucketRatio) {
  ClassCorrectionPredictor p(/*min_observations=*/3);
  // Jobs with 4 nodes requesting 2h but running 1h: ratio 0.5.
  for (int i = 0; i < 5; ++i)
    p.observe(job(i, 0, 4, kHour, 2 * kHour), kHour);
  EXPECT_NEAR(p.bucket_ratio(1, 1), 0.5, 1e-12);
  EXPECT_EQ(p.bucket_count(1, 1), 5u);
  EXPECT_EQ(p.predict(job(9, 0, 4, kHour, 2 * kHour)), kHour);
}

TEST(ClassCorrection, UsesGlobalMeanForUnseenBucket) {
  ClassCorrectionPredictor p(3);
  for (int i = 0; i < 5; ++i)
    p.observe(job(i, 0, 4, kHour, 2 * kHour), kHour);  // global ratio 0.5
  // Different bucket (128 nodes, 20h request): falls back to global 0.5.
  EXPECT_EQ(p.predict(job(9, 0, 128, kHour, 20 * kHour)), 10 * kHour);
}

TEST(ClassCorrection, NeverPredictsAboveRequestOrBelowOneSecond) {
  ClassCorrectionPredictor p(1);
  // Ratio > 1 (job overran its request — happens in real traces).
  p.observe(job(0, 0, 4, 3 * kHour, 2 * kHour), 3 * kHour);
  EXPECT_LE(p.predict(job(1, 0, 4, kHour, 2 * kHour)), 2 * kHour);
  // Tiny request with tiny ratio still yields >= 1 s.
  ClassCorrectionPredictor q(1);
  q.observe(job(0, 0, 1, 1, kHour), 1);
  EXPECT_GE(q.predict(job(1, 0, 1, 1, 10)), 1);
}

TEST(ClassCorrection, BucketBoundaries) {
  EXPECT_EQ(ClassCorrectionPredictor::node_bucket(1), 0u);
  EXPECT_EQ(ClassCorrectionPredictor::node_bucket(4), 1u);
  EXPECT_EQ(ClassCorrectionPredictor::node_bucket(16), 2u);
  EXPECT_EQ(ClassCorrectionPredictor::node_bucket(64), 3u);
  EXPECT_EQ(ClassCorrectionPredictor::node_bucket(128), 4u);
  EXPECT_EQ(ClassCorrectionPredictor::request_bucket(kHour), 0u);
  EXPECT_EQ(ClassCorrectionPredictor::request_bucket(4 * kHour), 1u);
  EXPECT_EQ(ClassCorrectionPredictor::request_bucket(12 * kHour), 2u);
  EXPECT_EQ(ClassCorrectionPredictor::request_bucket(24 * kHour), 3u);
}

TEST(Ewma, TracksDriftingRatio) {
  EwmaPredictor p(0.5);
  p.observe(job(0, 0, 1, kHour, 2 * kHour), kHour);  // ratio 0.5
  EXPECT_NEAR(p.current_ratio(), 0.5, 1e-12);
  p.observe(job(1, 0, 1, 2 * kHour, 2 * kHour), 2 * kHour);  // ratio 1.0
  EXPECT_NEAR(p.current_ratio(), 0.75, 1e-12);
  EXPECT_EQ(p.predict(job(2, 0, 1, kHour, 4 * kHour)), 3 * kHour);
}

TEST(Ewma, ColdStartReturnsRequest) {
  EwmaPredictor p;
  EXPECT_EQ(p.predict(job(0, 0, 1, kHour, 5 * kHour)), 5 * kHour);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(EwmaPredictor(0.0), Error);
  EXPECT_THROW(EwmaPredictor(1.5), Error);
}

TEST(PredictorInSimulator, SchedulerSeesPredictedEstimates) {
  // Train the predictor inline: first job completes with ratio 0.5, so the
  // second job's estimate becomes half its request.
  const Trace t = trace_of({job(0, 0, 4, kHour, 2 * kHour),
                            job(1, 2 * kHour, 4, kHour, 2 * kHour)},
                           4);
  ClassCorrectionPredictor predictor(1);
  SimConfig cfg;
  cfg.predictor = &predictor;

  struct Probe : Scheduler {
    Time seen_estimate = 0;
    std::vector<int> select_jobs(const SchedulerState& state) override {
      std::vector<int> out;
      for (const auto& w : state.waiting) {
        if (w.job->id == 1) seen_estimate = w.estimate;
        out.push_back(w.job->id);
      }
      return out;
    }
    std::string name() const override { return "probe"; }
  } probe;

  simulate(t, probe, cfg);
  EXPECT_EQ(probe.seen_estimate, kHour);  // 0.5 * 2h request
}

TEST(PredictorInSimulator, ImprovesEstimateAccuracyOverRequests) {
  // On a padded-request workload, the class-corrected estimates land much
  // closer to the truth than raw requests do.
  Rng rng(12);
  std::vector<Job> jobs;
  Time submit = 0;
  for (int i = 0; i < 200; ++i) {
    submit += static_cast<Time>(rng.uniform_int(0, 600));
    const Time runtime = static_cast<Time>(rng.uniform_int(600, 4 * kHour));
    jobs.push_back(job(i, submit, static_cast<int>(rng.uniform_int(1, 8)),
                       runtime, runtime * 4));  // users pad 4x
  }
  const Trace t = trace_of(std::move(jobs), 16);

  ClassCorrectionPredictor predictor(3);
  double err_requested = 0, err_predicted = 0;
  for (const auto& j : t.jobs) {
    err_requested += std::abs(static_cast<double>(j.requested - j.runtime));
    err_predicted +=
        std::abs(static_cast<double>(predictor.predict(j) - j.runtime));
    predictor.observe(j, j.runtime);
  }
  EXPECT_LT(err_predicted, 0.3 * err_requested);
}

}  // namespace
}  // namespace sbs
