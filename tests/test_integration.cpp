// Integration tests: whole-pipeline properties the paper's conclusions
// rest on, checked on scaled-down synthetic months.

#include <gtest/gtest.h>

#include "exp/policy_factory.hpp"
#include "exp/runner.hpp"
#include "test_support.hpp"
#include "workload/generator.hpp"

namespace sbs {
namespace {

struct MonthFixture {
  Trace trace;
  Thresholds thresholds;
};

MonthFixture fixture(const char* month, double load = 0.0,
                     double scale = 0.2) {
  GeneratorConfig cfg;
  cfg.job_scale = scale;
  MonthFixture f;
  f.trace = generate_month(month, cfg);
  if (load > 0.0) f.trace = rescale_to_load(f.trace, load);
  f.thresholds = fcfs_thresholds(f.trace);
  return f;
}

TEST(Integration, AllPoliciesFeasibleOnAHighLoadMonth) {
  const MonthFixture f = fixture("7/03", 0.9);
  for (const char* spec :
       {"FCFS-BF", "LXF-BF", "SJF-BF", "LXF&W-BF", "Selective-BF",
        "Lookahead", "DDS/lxf/dynB", "LDS/lxf/dynB", "DDS/fcfs/dynB",
        "DDS/lxf/w=100h", "DDS/lxf/wT"}) {
    const MonthEval eval =
        evaluate_spec(f.trace, spec, 500, f.thresholds, {}, true);
    EXPECT_NO_THROW(test::check_feasible(eval.outcomes, f.trace.capacity))
        << spec;
    EXPECT_EQ(eval.summary.jobs, f.trace.in_window_count()) << spec;
  }
}

TEST(Integration, LxfBeatsFcfsOnSlowdown) {
  // The envelope the paper builds on: LXF-backfill has (much) lower
  // average slowdown than FCFS-backfill under load.
  const MonthFixture f = fixture("7/03", 0.9);
  const MonthEval fcfs = evaluate_spec(f.trace, "FCFS-BF", 0, f.thresholds);
  const MonthEval lxf = evaluate_spec(f.trace, "LXF-BF", 0, f.thresholds);
  EXPECT_LT(lxf.summary.avg_bounded_slowdown,
            fcfs.summary.avg_bounded_slowdown);
}

TEST(Integration, SearchPolicyHoldsTheMaxWaitEnvelope) {
  // DDS/lxf/dynB's max wait stays near FCFS-backfill's (well below
  // LXF-backfill's on starvation-prone months).
  const MonthFixture f = fixture("7/03", 0.9);
  const MonthEval fcfs = evaluate_spec(f.trace, "FCFS-BF", 0, f.thresholds);
  const MonthEval lxf = evaluate_spec(f.trace, "LXF-BF", 0, f.thresholds);
  const MonthEval dds =
      evaluate_spec(f.trace, "DDS/lxf/dynB", 1000, f.thresholds);
  EXPECT_LE(dds.summary.max_wait_h, lxf.summary.max_wait_h);
  EXPECT_LE(dds.summary.max_wait_h, fcfs.summary.max_wait_h * 1.25);
  EXPECT_LT(dds.summary.avg_bounded_slowdown,
            fcfs.summary.avg_bounded_slowdown);
}

TEST(Integration, SearchPolicyKeepsExcessiveWaitLow) {
  const MonthFixture f = fixture("10/03", 0.9);
  const MonthEval lxf = evaluate_spec(f.trace, "LXF-BF", 0, f.thresholds);
  const MonthEval dds =
      evaluate_spec(f.trace, "DDS/lxf/dynB", 1000, f.thresholds);
  EXPECT_LE(dds.e_max.total_h, lxf.e_max.total_h + 1e-9);
}

TEST(Integration, FixedBoundZeroDegeneratesToAverageWaitMinimization) {
  // §5.1: ω = 0 turns the first level into average-wait minimization and
  // ruins the max wait relative to a sane bound.
  const MonthFixture f = fixture("10/03", 0.9);
  const MonthEval w0 = evaluate_spec(f.trace, "DDS/lxf/w=0h", 1000, f.thresholds);
  const MonthEval w50 =
      evaluate_spec(f.trace, "DDS/lxf/w=50h", 1000, f.thresholds);
  EXPECT_GT(w0.summary.max_wait_h, w50.summary.max_wait_h);
  EXPECT_LE(w0.summary.avg_wait_h, w50.summary.avg_wait_h * 1.2);
}

TEST(Integration, MaxWaitTracksTheFixedBound) {
  // Figure 2: larger ω lets the max wait drift up toward ω.
  const MonthFixture f = fixture("10/03", 0.9);
  const MonthEval w50 =
      evaluate_spec(f.trace, "DDS/lxf/w=50h", 1000, f.thresholds);
  const MonthEval w300 =
      evaluate_spec(f.trace, "DDS/lxf/w=300h", 1000, f.thresholds);
  EXPECT_LE(w50.summary.max_wait_h, 50.0 * 1.3);
  EXPECT_GE(w300.summary.max_wait_h, w50.summary.max_wait_h);
}

TEST(Integration, SjfStarvesSomeJob) {
  // §3.2: SJF-backfill has a starvation problem — its max wait exceeds
  // FCFS-backfill's substantially on a loaded month.
  const MonthFixture f = fixture("10/03", 0.9);
  const MonthEval fcfs = evaluate_spec(f.trace, "FCFS-BF", 0, f.thresholds);
  const MonthEval sjf = evaluate_spec(f.trace, "SJF-BF", 0, f.thresholds);
  EXPECT_GT(sjf.summary.max_wait_h, fcfs.summary.max_wait_h);
}

TEST(Integration, LookaheadTracksFcfsShape) {
  // §3.2 verification: Lookahead behaves like FCFS-backfill (keeps the
  // FCFS reservation; only packs better), so its max wait stays close.
  const MonthFixture f = fixture("9/03", 0.9);
  const MonthEval fcfs = evaluate_spec(f.trace, "FCFS-BF", 0, f.thresholds);
  const MonthEval look = evaluate_spec(f.trace, "Lookahead", 0, f.thresholds);
  EXPECT_NEAR(look.summary.max_wait_h, fcfs.summary.max_wait_h,
              0.5 * fcfs.summary.max_wait_h + 5.0);
  EXPECT_LE(look.summary.avg_wait_h, fcfs.summary.avg_wait_h * 1.1);
}

TEST(Integration, HigherNodeBudgetHelpsOrHolds) {
  const MonthFixture f = fixture("1/04", 0.9);
  const MonthEval l1k =
      evaluate_spec(f.trace, "DDS/lxf/dynB", 1000, f.thresholds);
  const MonthEval l8k =
      evaluate_spec(f.trace, "DDS/lxf/dynB", 8000, f.thresholds);
  // More search should not substantially worsen the first-level objective.
  EXPECT_LE(l8k.e_max.total_h, l1k.e_max.total_h * 1.25 + 5.0);
  EXPECT_GT(l8k.sched.nodes_visited, l1k.sched.nodes_visited);
}

TEST(Integration, RequestedRuntimesShrinkButPreserveGaps) {
  // §6.4: with R* = R the qualitative ordering persists.
  const MonthFixture f = fixture("9/03", 0.9);
  SimConfig sim;
  sim.use_requested_runtime = true;
  const Thresholds th = fcfs_thresholds(f.trace, sim);
  const MonthEval fcfs = evaluate_spec(f.trace, "FCFS-BF", 0, th, sim);
  const MonthEval lxf = evaluate_spec(f.trace, "LXF-BF", 0, th, sim);
  EXPECT_LT(lxf.summary.avg_bounded_slowdown,
            fcfs.summary.avg_bounded_slowdown);
}

TEST(Integration, WarmupJobsExcludedFromMetricsButSimulated) {
  const MonthFixture f = fixture("9/03");
  const MonthEval eval =
      evaluate_spec(f.trace, "FCFS-BF", 0, f.thresholds, {}, true);
  EXPECT_LT(eval.summary.jobs, f.trace.jobs.size());
  // Warm-up jobs still ran (their outcomes exist and are feasible).
  EXPECT_NO_THROW(test::check_feasible(eval.outcomes, f.trace.capacity));
}

}  // namespace
}  // namespace sbs
