#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include "exp/policy_factory.hpp"
#include "workload/generator.hpp"

namespace sbs {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.job_scale = 0.15;
  return cfg;
}

TEST(Runner, FcfsHasZeroExcessAgainstItsOwnMaxWait) {
  // By construction (paper §4): E^max_fcfs-bf of FCFS-backfill is zero.
  const Trace t = generate_month("9/03", small_config());
  const Thresholds th = fcfs_thresholds(t);
  const MonthEval eval = evaluate_spec(t, "FCFS-BF", 1000, th);
  EXPECT_DOUBLE_EQ(eval.e_max.total_h, 0.0);
  EXPECT_EQ(eval.e_max.count, 0u);
}

TEST(Runner, FcfsP98ExcessCoversAboutTwoPercent) {
  const Trace t = generate_month("9/03", small_config());
  const Thresholds th = fcfs_thresholds(t);
  const MonthEval eval = evaluate_spec(t, "FCFS-BF", 1000, th);
  const double fraction = static_cast<double>(eval.e_p98.count) /
                          static_cast<double>(eval.summary.jobs);
  EXPECT_LE(fraction, 0.03);
}

TEST(Runner, ThresholdsMatchSummary) {
  const Trace t = generate_month("9/03", small_config());
  const Thresholds th = fcfs_thresholds(t);
  const MonthEval eval = evaluate_spec(t, "FCFS-BF", 1000, th);
  // Thresholds are rounded to whole seconds; allow that quantum.
  EXPECT_NEAR(to_hours(th.max_wait), eval.summary.max_wait_h, 1.0 / kHour);
  EXPECT_NEAR(to_hours(th.p98_wait), eval.summary.p98_wait_h, 1.0 / kHour);
}

TEST(Runner, EvalCarriesMonthAndPolicyNames) {
  const Trace t = generate_month("9/03", small_config());
  const Thresholds th = fcfs_thresholds(t);
  const MonthEval eval = evaluate_spec(t, "DDS/lxf/dynB", 500, th);
  EXPECT_EQ(eval.month, "9/03");
  EXPECT_EQ(eval.policy, "DDS/lxf/dynB");
  EXPECT_GT(eval.sched.decisions, 0u);
}

TEST(Runner, OutcomesRetainedOnlyOnRequest) {
  const Trace t = generate_month("9/03", small_config());
  const Thresholds th = fcfs_thresholds(t);
  const MonthEval without = evaluate_spec(t, "FCFS-BF", 1000, th);
  EXPECT_TRUE(without.outcomes.empty());
  const MonthEval with = evaluate_spec(t, "FCFS-BF", 1000, th, {}, true);
  EXPECT_EQ(with.outcomes.size(), t.jobs.size());
}

TEST(Runner, DeterministicAcrossRuns) {
  const Trace t = generate_month("9/03", small_config());
  const Thresholds th = fcfs_thresholds(t);
  const MonthEval a = evaluate_spec(t, "DDS/lxf/dynB", 1000, th);
  const MonthEval b = evaluate_spec(t, "DDS/lxf/dynB", 1000, th);
  EXPECT_DOUBLE_EQ(a.summary.avg_wait_h, b.summary.avg_wait_h);
  EXPECT_DOUBLE_EQ(a.summary.max_wait_h, b.summary.max_wait_h);
  EXPECT_EQ(a.sched.nodes_visited, b.sched.nodes_visited);
}

TEST(Runner, RequestedRuntimeModeRunsEndToEnd) {
  const Trace t = generate_month("9/03", small_config());
  SimConfig sim;
  sim.use_requested_runtime = true;
  const Thresholds th = fcfs_thresholds(t, sim);
  const MonthEval eval = evaluate_spec(t, "DDS/lxf/dynB", 500, th, sim);
  EXPECT_GT(eval.summary.jobs, 0u);
  EXPECT_DOUBLE_EQ(
      evaluate_spec(t, "FCFS-BF", 1000, th, sim).e_max.total_h, 0.0);
}

}  // namespace
}  // namespace sbs
