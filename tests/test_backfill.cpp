#include "policies/backfill.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::check_feasible;
using test::job;
using test::trace_of;

BackfillScheduler make(PriorityKind priority, int reservations = 1) {
  BackfillConfig cfg;
  cfg.priority = priority;
  cfg.reservations = reservations;
  return BackfillScheduler(cfg);
}

TEST(Backfill, Name) {
  EXPECT_EQ(make(PriorityKind::Fcfs).name(), "FCFS-backfill");
  EXPECT_EQ(make(PriorityKind::Lxf).name(), "LXF-backfill");
}

TEST(Backfill, ShortNarrowJobBackfillsIntoIdleNodes) {
  // j0 occupies 3/4 nodes for 100 s. j1 (wide) must wait for all 4. j2
  // (1 node, 50 s) fits in the hole before j1's reservation.
  const Trace t = trace_of({job(0, 0, 3, 100), job(1, 10, 4, 100),
                            job(2, 20, 1, 50)},
                           4);
  auto s = make(PriorityKind::Fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[1].start, 100);  // reservation honored
  EXPECT_EQ(r.outcomes[2].start, 20);   // backfilled immediately
  check_feasible(r.outcomes, 4);
}

TEST(Backfill, BackfillMayNotDelayTheReservation) {
  // Same as above but j2 runs 90 s: starting it at t=20 would end at 110,
  // delaying j1's reservation at t=100 — so it must NOT backfill.
  const Trace t = trace_of({job(0, 0, 3, 100), job(1, 10, 4, 100),
                            job(2, 20, 1, 90)},
                           4);
  auto s = make(PriorityKind::Fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[1].start, 100);
  EXPECT_GE(r.outcomes[2].start, 100);  // had to wait
  check_feasible(r.outcomes, 4);
}

TEST(Backfill, FcfsWithoutContentionIsSubmitOrder) {
  const Trace t = trace_of({job(0, 0, 1, 1000), job(1, 10, 1, 1000),
                            job(2, 20, 1, 1000)},
                           4);
  auto s = make(PriorityKind::Fcfs);
  const SimResult r = simulate(t, s);
  for (const auto& o : r.outcomes) EXPECT_EQ(o.wait(), 0);
}

TEST(Backfill, SjfStartsShortJobFirstAtDrain) {
  // Machine busy until t=100; two jobs queue: long (submitted first) and
  // short. SJF starts the short one first when only 2 nodes free... here
  // both need the full machine so priority decides who goes at t=100.
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 1, 4, 1000),
                            job(2, 2, 4, 10)},
                           4);
  auto s = make(PriorityKind::Sjf);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[2].start, 100);   // short job wins
  EXPECT_EQ(r.outcomes[1].start, 110);
}

TEST(Backfill, FcfsHeadJobNeverOvertaken) {
  // Under FCFS-backfill with one reservation, the head job's start equals
  // the earliest drain point — later jobs never push it back.
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 1, 4, 50),
                            job(2, 2, 2, 30), job(3, 3, 2, 30)},
                           4);
  auto s = make(PriorityKind::Fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[1].start, 100);
  check_feasible(r.outcomes, 4);
}

TEST(Backfill, ZeroReservationsIsPureGreedyBackfill) {
  // With no reservations, the wide head job can starve behind narrow ones.
  const Trace t = trace_of({job(0, 0, 3, 100), job(1, 10, 4, 100),
                            job(2, 20, 1, 95)},
                           4);
  auto s = make(PriorityKind::Fcfs, 0);
  const SimResult r = simulate(t, s);
  // j2 backfills even though it delays j1 (no reservation protects it).
  EXPECT_EQ(r.outcomes[2].start, 20);
  EXPECT_GE(r.outcomes[1].start, 115);
  check_feasible(r.outcomes, 4);
}

TEST(Backfill, MoreReservationsProtectMoreJobs) {
  // Two wide jobs queue; with 2 reservations a narrow long job cannot
  // backfill past either of them.
  const Trace t = trace_of({job(0, 0, 3, 100), job(1, 10, 4, 50),
                            job(2, 11, 4, 50), job(3, 20, 1, 1000)},
                           4);
  auto one = make(PriorityKind::Fcfs, 1);
  const SimResult r1 = simulate(t, one);
  auto two = make(PriorityKind::Fcfs, 2);
  const SimResult r2 = simulate(t, two);
  // With one reservation j3 may slip in front of j2; with two it cannot.
  EXPECT_EQ(r2.outcomes[1].start, 100);
  EXPECT_EQ(r2.outcomes[2].start, 150);
  EXPECT_GE(r2.outcomes[3].start, 200);
  EXPECT_LE(r1.outcomes[3].start, r2.outcomes[3].start);
  check_feasible(r1.outcomes, 4);
  check_feasible(r2.outcomes, 4);
}

TEST(Backfill, ConservativeModeProtectsEveryone) {
  // Conservative backfill (reservations for all): the narrow long job may
  // not delay ANY queued job's projected start. j3 (narrow, long) would
  // push j2's projected start back, so it must wait even though only one
  // reservation (j1's) exists under EASY.
  const Trace t = trace_of({job(0, 0, 3, 100), job(1, 10, 4, 50),
                            job(2, 11, 4, 50), job(3, 20, 1, 1000)},
                           4);
  auto cons = make(PriorityKind::Fcfs, kConservativeReservations);
  const SimResult r = simulate(t, cons);
  EXPECT_EQ(r.outcomes[1].start, 100);
  EXPECT_EQ(r.outcomes[2].start, 150);
  EXPECT_GE(r.outcomes[3].start, 200);
  check_feasible(r.outcomes, 4);
  EXPECT_EQ(cons.name(), "FCFS-backfill(cons)");
}

TEST(Backfill, NameEncodesNonDefaultReservations) {
  EXPECT_EQ(make(PriorityKind::Fcfs, 0).name(), "FCFS-backfill(res=0)");
  EXPECT_EQ(make(PriorityKind::Fcfs, 1).name(), "FCFS-backfill");
  EXPECT_EQ(make(PriorityKind::Lxf, 4).name(), "LXF-backfill(res=4)");
}

TEST(Backfill, RejectsNegativeReservations) {
  BackfillConfig cfg;
  cfg.reservations = -1;
  EXPECT_THROW(BackfillScheduler{cfg}, Error);
}

TEST(Backfill, LxfReordersQueueAsWaitsGrow) {
  // A short job submitted later overtakes a long job in LXF order because
  // its slowdown grows much faster.
  const Trace t = trace_of({job(0, 0, 4, 200), job(1, 1, 4, 10 * kHour),
                            job(2, 100, 4, kMinute)},
                           4);
  auto s = make(PriorityKind::Lxf);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[2].start, 200);  // short job jumps the long one
  EXPECT_EQ(r.outcomes[1].start, 260);
}

// Property: on random workloads, every backfill variant produces a
// feasible, non-preemptive schedule and never leaves the machine idle
// while the head job fits.
class BackfillProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(BackfillProperty, RandomWorkloadsAreFeasible) {
  Rng rng(std::get<0>(GetParam()));
  const auto priority = static_cast<PriorityKind>(std::get<1>(GetParam()));
  std::vector<Job> jobs;
  Time submit = 0;
  for (int i = 0; i < 60; ++i) {
    submit += static_cast<Time>(rng.uniform_int(0, 300));
    jobs.push_back(job(i, submit, static_cast<int>(rng.uniform_int(1, 16)),
                       static_cast<Time>(rng.uniform_int(1, 2000))));
  }
  const Trace t = trace_of(std::move(jobs), 16);
  BackfillConfig cfg;
  cfg.priority = priority;
  BackfillScheduler s(cfg);
  const SimResult r = simulate(t, s);
  EXPECT_NO_THROW(check_feasible(r.outcomes, 16));
  for (const auto& o : r.outcomes) EXPECT_GE(o.start, o.job.submit);
}

INSTANTIATE_TEST_SUITE_P(
    Random, BackfillProperty,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55),
                       ::testing::Values(0, 1, 2, 3)));  // all PriorityKinds

}  // namespace
}  // namespace sbs
