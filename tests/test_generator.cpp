#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include "metrics/trace_mix.hpp"
#include "util/error.hpp"

namespace sbs {
namespace {

TEST(NcsaTables, TenMonthsTranscribed) {
  ASSERT_EQ(ncsa_months().size(), 10u);
  EXPECT_EQ(ncsa_months().front().name, "6/03");
  EXPECT_EQ(ncsa_months().back().name, "3/04");
}

TEST(NcsaTables, LookupByName) {
  const MonthStats& m = ncsa_month("7/03");
  EXPECT_EQ(m.total_jobs, 1399);
  EXPECT_NEAR(m.load, 0.89, 1e-9);
  EXPECT_THROW(ncsa_month("13/99"), Error);
}

TEST(NcsaTables, RuntimeLimitSwitchesInDecember) {
  EXPECT_EQ(ncsa_month("11/03").runtime_limit, 12 * kHour);
  EXPECT_EQ(ncsa_month("12/03").runtime_limit, 24 * kHour);
  EXPECT_EQ(ncsa_month("3/04").runtime_limit, 24 * kHour);
}

TEST(NcsaTables, FractionsRoughlyNormalized) {
  for (const auto& m : ncsa_months()) {
    double jobs = 0, demand = 0;
    for (std::size_t r = 0; r < 8; ++r) {
      jobs += m.job_fraction[r];
      demand += m.demand_fraction[r];
    }
    EXPECT_NEAR(jobs, 1.0, 0.02) << m.name;
    EXPECT_NEAR(demand, 1.0, 0.02) << m.name;
  }
}

TEST(NcsaTables, CoarseClassMapping) {
  EXPECT_EQ(coarse_class_of_range(0), 0u);
  EXPECT_EQ(coarse_class_of_range(1), 1u);
  EXPECT_EQ(coarse_class_of_range(2), 2u);
  EXPECT_EQ(coarse_class_of_range(3), 2u);
  EXPECT_EQ(coarse_class_of_range(4), 3u);
  EXPECT_EQ(coarse_class_of_range(5), 3u);
  EXPECT_EQ(coarse_class_of_range(6), 4u);
  EXPECT_EQ(coarse_class_of_range(7), 4u);
}

TEST(NcsaTables, RangeBoundsMatchLabels) {
  EXPECT_EQ(mix_range_bounds(0).lo, 1);
  EXPECT_EQ(mix_range_bounds(0).hi, 1);
  EXPECT_EQ(mix_range_bounds(7).lo, 65);
  EXPECT_EQ(mix_range_bounds(7).hi, 128);
}

TEST(Generator, Deterministic) {
  const Trace a = generate_month("9/03");
  const Trace b = generate_month("9/03");
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].submit, b.jobs[i].submit);
    EXPECT_EQ(a.jobs[i].nodes, b.jobs[i].nodes);
    EXPECT_EQ(a.jobs[i].runtime, b.jobs[i].runtime);
    EXPECT_EQ(a.jobs[i].requested, b.jobs[i].requested);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig a, b;
  a.seed = 1;
  b.seed = 2;
  const Trace ta = generate_month("9/03", a);
  const Trace tb = generate_month("9/03", b);
  bool any_diff = ta.jobs.size() != tb.jobs.size();
  for (std::size_t i = 0; !any_diff && i < ta.jobs.size(); ++i)
    any_diff = ta.jobs[i].submit != tb.jobs[i].submit ||
               ta.jobs[i].runtime != tb.jobs[i].runtime;
  EXPECT_TRUE(any_diff);
}

TEST(Generator, JobCountMatchesTable) {
  for (const char* name : {"6/03", "1/04"}) {
    const Trace t = generate_month(name);
    EXPECT_EQ(t.in_window_count(),
              static_cast<std::size_t>(ncsa_month(name).total_jobs))
        << name;
  }
}

TEST(Generator, OfferedLoadNearTable) {
  for (const auto& m : ncsa_months()) {
    const Trace t = generate_month(m);
    EXPECT_NEAR(t.offered_load(), m.load, 0.08) << m.name;
  }
}

TEST(Generator, JobMixMatchesTable3) {
  // The generated per-range job fractions must track Table 3 closely
  // (apportionment is deterministic), demand fractions within tolerance.
  for (const char* name : {"7/03", "1/04", "10/03"}) {
    const MonthStats& m = ncsa_month(name);
    const TraceMix mix = trace_mix(generate_month(m));
    double jf_sum = 0;
    for (double f : m.job_fraction) jf_sum += f;
    for (std::size_t r = 0; r < kMixRanges; ++r) {
      EXPECT_NEAR(mix.job_fraction[r], m.job_fraction[r] / jf_sum, 0.01)
          << name << " range " << r;
      EXPECT_NEAR(mix.demand_fraction[r], m.demand_fraction[r], 0.06)
          << name << " range " << r;
    }
  }
}

TEST(Generator, RuntimeClassesMatchTable4) {
  for (const char* name : {"8/03", "1/04"}) {
    const MonthStats& m = ncsa_month(name);
    const RuntimeMix mix = runtime_mix(generate_month(m));
    double short_target = 0, long_target = 0;
    for (std::size_t c = 0; c < 5; ++c) {
      short_target += m.short_fraction[c];
      long_target += m.long_fraction[c];
    }
    EXPECT_NEAR(mix.short_total, short_target, 0.08) << name;
    EXPECT_NEAR(mix.long_total, long_target, 0.08) << name;
  }
}

TEST(Generator, RespectsRuntimeLimit) {
  for (const char* name : {"11/03", "12/03"}) {
    const Trace t = generate_month(name);
    const Time limit = ncsa_month(name).runtime_limit;
    for (const auto& j : t.jobs) {
      EXPECT_LE(j.runtime, limit);
      EXPECT_LE(j.requested, limit);
      EXPECT_GE(j.requested, j.runtime);
    }
  }
}

TEST(Generator, WarmupAndCooldownFlanksWindow) {
  const Trace t = generate_month("6/03");
  bool has_warm = false, has_cool = false;
  for (const auto& j : t.jobs) {
    if (!j.in_window) {
      EXPECT_TRUE(j.submit < 0 || j.submit >= t.window_end);
      has_warm |= j.submit < 0;
      has_cool |= j.submit >= t.window_end;
      EXPECT_GE(j.submit, -kWeek);
      EXPECT_LT(j.submit, t.window_end + kWeek);
    } else {
      EXPECT_GE(j.submit, 0);
      EXPECT_LT(j.submit, t.window_end);
    }
  }
  EXPECT_TRUE(has_warm);
  EXPECT_TRUE(has_cool);
}

TEST(Generator, NoWarmupWhenDisabled) {
  GeneratorConfig cfg;
  cfg.warmup_cooldown = false;
  const Trace t = generate_month("6/03", cfg);
  for (const auto& j : t.jobs) EXPECT_TRUE(j.in_window);
}

TEST(Generator, ScaledRunPreservesLoad) {
  GeneratorConfig cfg;
  cfg.job_scale = 0.25;
  const Trace t = generate_month("7/03", cfg);
  EXPECT_NEAR(t.offered_load(), 0.89, 0.1);
  EXPECT_NEAR(static_cast<double>(t.in_window_count()), 0.25 * 1399, 2.0);
  EXPECT_EQ(t.window_end, static_cast<Time>(0.25 * 31 * kDay));
}

TEST(Generator, TooSmallScaleRejected) {
  GeneratorConfig cfg;
  cfg.job_scale = 0.001;
  EXPECT_THROW(generate_month("7/03", cfg), Error);
}

TEST(Generator, AllMonthsGenerateAndValidate) {
  GeneratorConfig cfg;
  cfg.job_scale = 0.2;
  const auto traces = generate_all_months(cfg);
  ASSERT_EQ(traces.size(), 10u);
  for (const auto& t : traces) EXPECT_NO_THROW(t.validate());
}

TEST(Generator, HighLoadRescaleHitsTarget) {
  const Trace t = generate_month("10/03");
  const Trace hi = rescale_to_load(t, 0.9);
  EXPECT_NEAR(hi.offered_load(), 0.9, 0.01);
}

}  // namespace
}  // namespace sbs
