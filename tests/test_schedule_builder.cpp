#include "core/schedule_builder.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace sbs {
namespace {

using test::ProblemBuilder;

TEST(ScheduleBuilder, EmptyMachineStartsEverythingPackable) {
  ProblemBuilder b(4);
  b.wait(-kHour, 2, kHour).wait(-kHour, 2, kHour);
  const SearchProblem p = b.build();
  const BuiltSchedule s = build_schedule(p, std::vector<std::size_t>{0, 1});
  EXPECT_EQ(s.starts[0], 0);
  EXPECT_EQ(s.starts[1], 0);
  EXPECT_DOUBLE_EQ(s.value.excess_h, 0.0);
  EXPECT_DOUBLE_EQ(s.value.avg_bsld, 2.0);  // each waited 1h on a 1h job
}

TEST(ScheduleBuilder, OrderDeterminesWhoWaits) {
  // Two 3-node jobs on a 4-node machine: only the first in order starts.
  ProblemBuilder b(4);
  b.wait(0, 3, kHour).wait(0, 3, kHour);
  const SearchProblem p = b.build();
  const BuiltSchedule ab = build_schedule(p, std::vector<std::size_t>{0, 1});
  EXPECT_EQ(ab.starts[0], 0);
  EXPECT_EQ(ab.starts[1], kHour);
  const BuiltSchedule ba = build_schedule(p, std::vector<std::size_t>{1, 0});
  EXPECT_EQ(ba.starts[1], 0);
  EXPECT_EQ(ba.starts[0], kHour);
}

TEST(ScheduleBuilder, LaterJobCanStartEarlierThanPredecessorOnPath) {
  // Consideration order is not start order (paper §2.2): a wide job placed
  // first must wait for the drain; a narrow job placed second starts NOW.
  ProblemBuilder b(4);
  b.busy(2, kHour);
  b.wait(0, 4, kHour).wait(0, 1, 30 * kMinute);
  const SearchProblem p = b.build();
  const BuiltSchedule s = build_schedule(p, std::vector<std::size_t>{0, 1});
  EXPECT_EQ(s.starts[0], kHour);  // wide job waits for the busy block
  EXPECT_EQ(s.starts[1], 0);      // narrow job fills the hole
}

TEST(ScheduleBuilder, PlacedJobsConstrainLaterOnes) {
  ProblemBuilder b(4);
  b.wait(0, 4, kHour).wait(0, 4, kHour).wait(0, 4, kHour);
  const SearchProblem p = b.build();
  const BuiltSchedule s =
      build_schedule(p, std::vector<std::size_t>{2, 0, 1});
  EXPECT_EQ(s.starts[2], 0);
  EXPECT_EQ(s.starts[0], kHour);
  EXPECT_EQ(s.starts[1], 2 * kHour);
}

TEST(ScheduleBuilder, ExcessAccumulatesBeyondBounds) {
  // Bound of 30 minutes; second job starts after 1h -> 30m excess.
  ProblemBuilder b(4);
  b.wait(0, 4, kHour, 30 * kMinute).wait(0, 4, kHour, 30 * kMinute);
  const SearchProblem p = b.build();
  const BuiltSchedule s = build_schedule(p, std::vector<std::size_t>{0, 1});
  EXPECT_DOUBLE_EQ(s.value.excess_h, 0.5);
}

TEST(ScheduleBuilder, RejectsNonPermutation) {
  ProblemBuilder b(4);
  b.wait(0, 1, kHour).wait(0, 1, kHour);
  const SearchProblem p = b.build();
  EXPECT_THROW(build_schedule(p, std::vector<std::size_t>{0, 0}), Error);
  EXPECT_THROW(build_schedule(p, std::vector<std::size_t>{0}), Error);
  EXPECT_THROW(build_schedule(p, std::vector<std::size_t>{0, 5}), Error);
}

TEST(ScheduleBuilder, RespectsBusyProfile) {
  ProblemBuilder b(8);
  b.busy(8, 2 * kHour);
  b.wait(0, 1, kHour);
  const SearchProblem p = b.build();
  const BuiltSchedule s = build_schedule(p, std::vector<std::size_t>{0});
  EXPECT_EQ(s.starts[0], 2 * kHour);
}

}  // namespace
}  // namespace sbs
