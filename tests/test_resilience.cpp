// Overload-governor tests: the health monitor's EWMA hysteresis, the
// breaker's threshold parser and ladder walk (degrade / half-open probe /
// recover, no flapping), the governed scheduler's fallback equivalence
// (pinned at the bottom rung it IS plain LXF backfill), and an end-to-end
// overload-then-idle run whose enter-ladder / probe / full-recovery
// transitions happen exactly once each and are pinned to a golden CSV.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/policy_factory.hpp"
#include "jobs/swf.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "policies/backfill.hpp"
#include "resilience/governed_scheduler.hpp"
#include "resilience/governor.hpp"
#include "resilience/health.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

#ifndef SBS_TEST_DATA_DIR
#error "SBS_TEST_DATA_DIR must point at tests/data"
#endif

namespace sbs {
namespace {

using resilience::GovernedScheduler;
using resilience::Governor;
using resilience::GovernorConfig;
using resilience::GovLevel;
using resilience::HealthConfig;
using resilience::HealthMonitor;
using resilience::HealthSignal;
using resilience::HealthVerdict;
using test::job;
using test::trace_of;

// ---------------------------------------------------------------------------
// HealthMonitor

TEST(HealthMonitor, FirstSamplePrimesTheEwmas) {
  HealthConfig cfg;
  cfg.queue_high = 10.0;
  HealthMonitor m(cfg);
  m.observe({.queue_depth = 8.0});
  EXPECT_DOUBLE_EQ(m.ewma_queue(), 8.0);  // seeded, not 0.3 * 8
}

TEST(HealthMonitor, VerdictsFollowTheWatermarksWithHysteresis) {
  HealthConfig cfg;
  cfg.alpha = 1.0;  // EWMA == current sample: verdicts purely thresholded
  cfg.queue_high = 10.0;
  cfg.recovery_fraction = 0.5;  // low watermark 5
  HealthMonitor m(cfg);
  EXPECT_EQ(m.observe({.queue_depth = 12.0}), HealthVerdict::Overloaded);
  EXPECT_EQ(m.observe({.queue_depth = 10.0}), HealthVerdict::Overloaded);
  EXPECT_EQ(m.observe({.queue_depth = 7.0}), HealthVerdict::Neutral);
  EXPECT_EQ(m.observe({.queue_depth = 5.0}), HealthVerdict::Neutral);
  EXPECT_EQ(m.observe({.queue_depth = 4.0}), HealthVerdict::Recovered);
}

TEST(HealthMonitor, DisabledSignalsNeverTrip) {
  HealthMonitor m(HealthConfig{});  // every watermark 0 = everything off
  const HealthSignal brutal{.queue_depth = 1e9,
                            .think_ms = 1e9,
                            .deadline_overrun = true,
                            .budget_exhausted = true};
  EXPECT_EQ(m.observe(brutal), HealthVerdict::Recovered);
}

TEST(HealthMonitor, OverrunStreakResetsOnAnyCleanDecision) {
  HealthConfig cfg;
  cfg.overrun_streak_high = 3;
  HealthMonitor m(cfg);
  EXPECT_EQ(m.observe({.deadline_overrun = true}), HealthVerdict::Neutral);
  EXPECT_EQ(m.observe({.deadline_overrun = true}), HealthVerdict::Neutral);
  EXPECT_EQ(m.observe({.deadline_overrun = false}), HealthVerdict::Recovered);
  EXPECT_EQ(m.observe({.deadline_overrun = true}), HealthVerdict::Neutral);
  EXPECT_EQ(m.observe({.deadline_overrun = true}), HealthVerdict::Neutral);
  EXPECT_EQ(m.observe({.deadline_overrun = true}), HealthVerdict::Overloaded);
}

TEST(HealthMonitor, StateRoundTripsThroughJson) {
  HealthConfig cfg;
  cfg.queue_high = 10.0;
  cfg.think_ms_high = 50.0;
  HealthMonitor m(cfg);
  m.observe({.queue_depth = 7.0, .think_ms = 3.5, .deadline_overrun = true});
  m.observe({.queue_depth = 9.0, .think_ms = 1.25, .deadline_overrun = true});

  obs::JsonWriter w;
  w.begin_object();
  m.append_state(w, "monitor");
  w.end_object();

  HealthMonitor restored(cfg);
  restored.restore_state(*obs::parse_json(w.str()).find("monitor"));
  EXPECT_DOUBLE_EQ(restored.ewma_queue(), m.ewma_queue());
  EXPECT_DOUBLE_EQ(restored.ewma_think_ms(), m.ewma_think_ms());
  EXPECT_DOUBLE_EQ(restored.ewma_budget(), m.ewma_budget());
  EXPECT_EQ(restored.overrun_streak(), 2);
}

TEST(HealthMonitor, RejectsBadConfig) {
  HealthConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(HealthMonitor{bad}, Error);
  bad = {};
  bad.recovery_fraction = 1.5;
  EXPECT_THROW(HealthMonitor{bad}, Error);
}

// ---------------------------------------------------------------------------
// Threshold parser

TEST(GovernorThresholds, EmptySpecYieldsDefaults) {
  const GovernorConfig cfg = resilience::parse_governor_thresholds("");
  EXPECT_EQ(cfg.trip_decisions, 3);
  EXPECT_EQ(cfg.probe_after, 25);
  EXPECT_DOUBLE_EQ(cfg.health.think_ms_high, 250.0);
  EXPECT_EQ(cfg.health.overrun_streak_high, 3);
}

TEST(GovernorThresholds, ParsesEveryKeyAndEchoesCanonically) {
  const std::string spec =
      "queue=20,think-ms=0,overrun=0,budget=0.8,alpha=0.5,recover=0.25,"
      "trip=2,probe=10,promote=3,reduce=0.1,level=1";
  const GovernorConfig cfg = resilience::parse_governor_thresholds(spec);
  EXPECT_DOUBLE_EQ(cfg.health.queue_high, 20.0);
  EXPECT_DOUBLE_EQ(cfg.health.budget_fraction_high, 0.8);
  EXPECT_EQ(cfg.trip_decisions, 2);
  EXPECT_EQ(cfg.promote_probes, 3);
  EXPECT_EQ(cfg.initial_level, 1);
  EXPECT_EQ(cfg.spec(), spec);  // the echo is the canonical spelling
}

TEST(GovernorThresholds, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(resilience::parse_governor_thresholds("turbo=1"), Error);
  EXPECT_THROW(resilience::parse_governor_thresholds("queue"), Error);
  EXPECT_THROW(resilience::parse_governor_thresholds("trip=zero"), Error);
  EXPECT_THROW(resilience::parse_governor_thresholds("trip=0"), Error);
  EXPECT_THROW(resilience::parse_governor_thresholds("reduce=0"), Error);
  EXPECT_THROW(resilience::parse_governor_thresholds("level=4"), Error);
}

// ---------------------------------------------------------------------------
// Governor ladder walk (driven verdict sequences)

GovernorConfig breaker(int trip, int probe, int promote) {
  GovernorConfig cfg;
  cfg.health = {};  // irrelevant here: verdicts are fed directly
  cfg.trip_decisions = trip;
  cfg.probe_after = probe;
  cfg.promote_probes = promote;
  return cfg;
}

/// One plan/report cycle; returns the level the decision ran at.
GovLevel step(Governor& g, HealthVerdict v) {
  const Governor::Plan plan = g.plan();
  g.report(v);
  return plan.level;
}

TEST(Governor, TripsOnlyAfterConsecutiveOverloads) {
  Governor g(breaker(/*trip=*/3, 25, 2));
  step(g, HealthVerdict::Overloaded);
  step(g, HealthVerdict::Overloaded);
  step(g, HealthVerdict::Neutral);  // streak broken
  step(g, HealthVerdict::Overloaded);
  step(g, HealthVerdict::Overloaded);
  EXPECT_EQ(g.level(), GovLevel::Full);
  step(g, HealthVerdict::Overloaded);  // third consecutive
  EXPECT_EQ(g.level(), GovLevel::Reduced);
  const auto transitions = g.take_transitions();
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].kind, "degrade");
  EXPECT_EQ(transitions[0].from, 0);
  EXPECT_EQ(transitions[0].to, 1);
}

TEST(Governor, NeverRecoversInsideTheProbeWindow) {
  // A degrade is never immediately undone: even a string of Recovered
  // verdicts shorter than probe_after leaves the level alone (monotone
  // within the window — no A->B->A flap).
  Governor g(breaker(/*trip=*/1, /*probe=*/5, /*promote=*/1));
  step(g, HealthVerdict::Overloaded);
  ASSERT_EQ(g.level(), GovLevel::Reduced);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(step(g, HealthVerdict::Recovered), GovLevel::Reduced);
    EXPECT_EQ(g.level(), GovLevel::Reduced);
  }
  // 5th calm decision earns the half-open probe; its success recovers.
  EXPECT_EQ(step(g, HealthVerdict::Recovered), GovLevel::Reduced);
  EXPECT_EQ(step(g, HealthVerdict::Recovered), GovLevel::Full);  // the probe
  EXPECT_EQ(g.level(), GovLevel::Full);
}

TEST(Governor, FailedProbeFallsBackAndRestartsTheCalmWindow) {
  Governor g(breaker(/*trip=*/1, /*probe=*/2, /*promote=*/1));
  step(g, HealthVerdict::Overloaded);
  step(g, HealthVerdict::Recovered);
  step(g, HealthVerdict::Recovered);
  g.take_transitions();
  // Probe runs at Full but comes back Overloaded: stay at Reduced.
  EXPECT_EQ(step(g, HealthVerdict::Overloaded), GovLevel::Full);
  EXPECT_EQ(g.level(), GovLevel::Reduced);
  const auto transitions = g.take_transitions();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].kind, "probe");
  EXPECT_EQ(transitions[1].kind, "probe_fail");
  // The calm window restarts: the very next decision must not probe.
  EXPECT_EQ(step(g, HealthVerdict::Recovered), GovLevel::Reduced);
}

TEST(Governor, PromotionNeedsConsecutiveSuccessfulProbes) {
  Governor g(breaker(/*trip=*/1, /*probe=*/2, /*promote=*/2));
  step(g, HealthVerdict::Overloaded);
  step(g, HealthVerdict::Recovered);
  step(g, HealthVerdict::Recovered);
  // First probe succeeds but promote=2: still Reduced, next decision is
  // the second (consecutive) probe, whose success recovers.
  EXPECT_EQ(step(g, HealthVerdict::Recovered), GovLevel::Full);
  EXPECT_EQ(g.level(), GovLevel::Reduced);
  EXPECT_EQ(step(g, HealthVerdict::Recovered), GovLevel::Full);
  EXPECT_EQ(g.level(), GovLevel::Full);
}

TEST(Governor, LadderBottomsOutAtFallback) {
  Governor g(breaker(/*trip=*/1, 25, 1));
  for (int i = 0; i < 10; ++i) step(g, HealthVerdict::Overloaded);
  EXPECT_EQ(g.level(), GovLevel::Fallback);  // clamped, no overflow
}

TEST(Governor, InitialLevelIsAFloor) {
  GovernorConfig cfg = breaker(/*trip=*/1, /*probe=*/1, /*promote=*/1);
  cfg.initial_level = 3;
  Governor g(cfg);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(step(g, HealthVerdict::Recovered), GovLevel::Fallback);
  EXPECT_TRUE(g.take_transitions().empty());  // pinned: no probes, ever
}

TEST(Governor, StateRoundTripsThroughJson) {
  Governor g(breaker(/*trip=*/3, /*probe=*/4, /*promote=*/2));
  step(g, HealthVerdict::Overloaded);
  step(g, HealthVerdict::Overloaded);
  step(g, HealthVerdict::Overloaded);
  step(g, HealthVerdict::Recovered);
  step(g, HealthVerdict::Recovered);
  g.take_transitions();

  obs::JsonWriter w;
  w.begin_object();
  g.append_state(w, "governor");
  w.end_object();

  Governor restored(breaker(3, 4, 2));
  restored.restore_state(*obs::parse_json(w.str()).find("governor"));
  EXPECT_EQ(restored.level(), g.level());
  // The clone must continue identically: both reach calm_streak = 4 two
  // decisions later, so both probe on the third (plan() precedes report(),
  // so the probe fires on the decision after the streak hits probe_after).
  for (Governor* ptr : {&g, &restored}) {
    step(*ptr, HealthVerdict::Recovered);
    EXPECT_TRUE(ptr->take_transitions().empty());
    step(*ptr, HealthVerdict::Recovered);
    EXPECT_TRUE(ptr->take_transitions().empty());
    step(*ptr, HealthVerdict::Recovered);
    const auto t = ptr->take_transitions();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].kind, "probe");
  }
}

// ---------------------------------------------------------------------------
// GovernedScheduler

/// Queue-depth-only monitor with alpha=1: the ladder depends only on the
/// simulated queue, never on wall clock — fully deterministic.
GovernorConfig deterministic_governor(double queue_high, int trip, int probe,
                                      int promote) {
  GovernorConfig cfg;
  cfg.health = {};
  cfg.health.alpha = 1.0;
  cfg.health.queue_high = queue_high;
  cfg.trip_decisions = trip;
  cfg.probe_after = probe;
  cfg.promote_probes = promote;
  return cfg;
}

TEST(GovernedScheduler, PinnedFallbackReproducesPlainLxfBackfillExactly) {
  const Trace trace =
      read_swf_file(std::string(SBS_TEST_DATA_DIR) + "/golden_mini.swf");

  BackfillConfig bf;
  bf.priority = PriorityKind::Lxf;
  BackfillScheduler plain(bf);
  const SimResult expected = simulate(trace, plain);

  GovernorConfig gov = deterministic_governor(4.0, 1, 2, 1);
  gov.initial_level = 3;  // pinned at the bottom rung for the whole run
  SearchSchedulerConfig base;
  base.search.node_limit = 300;
  GovernedScheduler governed(base, gov);
  const SimResult actual = simulate(trace, governed);

  ASSERT_EQ(actual.outcomes.size(), expected.outcomes.size());
  for (std::size_t i = 0; i < expected.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(expected.outcomes[i].job.id));
    EXPECT_EQ(actual.outcomes[i].start, expected.outcomes[i].start);
    EXPECT_EQ(actual.outcomes[i].end, expected.outcomes[i].end);
  }
  EXPECT_EQ(governed.level(), GovLevel::Fallback);
}

TEST(GovernedScheduler, MergesStatsAcrossRungsAndNames) {
  SearchSchedulerConfig base;
  base.search.node_limit = 100;
  GovernedScheduler gov(base, deterministic_governor(1e9, 3, 25, 2));
  EXPECT_EQ(gov.name(), "gov(DDS/lxf/dynB)");

  const Trace trace = trace_of({job(0, 0, 2, 100), job(1, 0, 2, 100),
                                job(2, 10, 2, 100)},
                               /*capacity=*/4);
  const SimResult result = simulate(trace, gov);
  EXPECT_EQ(result.outcomes.size(), 3u);
  EXPECT_EQ(gov.stats().decisions, result.sched_stats.decisions);
  EXPECT_GT(gov.stats().nodes_visited, 0u);
}

TEST(GovernedScheduler, FactoryWiresGovernorAndRejectsNonSearchSpecs) {
  const GovernorConfig gov = deterministic_governor(10.0, 2, 5, 1);
  const auto governed = make_policy("DDS/lxf/dynB", 500, -1.0, 0, true, false,
                                    &gov);
  EXPECT_EQ(governed->name(), "gov(DDS/lxf/dynB)");
  EXPECT_THROW(
      make_policy("LXF-BF", 500, -1.0, 0, true, false, &gov), Error);
}

// ---------------------------------------------------------------------------
// End-to-end hysteresis: overload burst, then drain. With capacity equal to
// every job's width the machine serializes the queue, so the queue depth at
// decision k is exactly 12 - k: two Overloaded decisions (12, 11) trip the
// breaker once, the drain from 10 down crosses the hysteresis band, and
// the calm streak earns exactly one successful probe. The run must show
// degrade / probe / recover EXACTLY once each.

struct GovernorEvent {
  Time t = 0;
  std::string kind;
  int from = 0;
  int to = 0;
};

std::vector<GovernorEvent> run_overload_recovery(const std::string& path) {
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back(job(i, 0, 4, 100));
  const Trace trace = trace_of(std::move(jobs), /*capacity=*/4);

  // Thresholds: high 10, low 5 (recover=0.5), trip 2, probe after 3 calm
  // decisions, one successful probe promotes.
  GovernorConfig gov = deterministic_governor(10.0, 2, 3, 1);
  SearchSchedulerConfig base;
  base.search.node_limit = 200;
  GovernedScheduler scheduler(base, gov);

  {
    obs::Telemetry telemetry(std::make_unique<obs::JsonlSink>(path));
    SimConfig sim;
    sim.telemetry = &telemetry;
    simulate(trace, scheduler, sim);
  }

  std::vector<GovernorEvent> events;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const obs::JsonValue v = obs::parse_json(line);
    if (const obs::JsonValue* type = v.find("type");
        type == nullptr || type->as_string() != "governor")
      continue;
    GovernorEvent e;
    e.t = v.find("t")->as_int();
    e.kind = v.find("kind")->as_string();
    e.from = static_cast<int>(v.find("from")->as_int());
    e.to = static_cast<int>(v.find("to")->as_int());
    events.push_back(e);
  }
  return events;
}

TEST(GovernedScheduler, OverloadThenIdleWalksTheLadderExactlyOnce) {
  const std::string path =
      testing::TempDir() + "/sbs_governor_hysteresis.jsonl";
  const std::vector<GovernorEvent> events = run_overload_recovery(path);

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, "degrade");
  EXPECT_EQ(events[0].from, 0);
  EXPECT_EQ(events[0].to, 1);
  EXPECT_EQ(events[1].kind, "probe");
  EXPECT_EQ(events[1].from, 1);
  EXPECT_EQ(events[1].to, 0);
  EXPECT_EQ(events[2].kind, "recover");
  EXPECT_EQ(events[2].from, 1);
  EXPECT_EQ(events[2].to, 0);
  EXPECT_LT(events[0].t, events[1].t);  // enter-ladder before the probe

  // The report layer tallies the same story.
  const obs::TelemetrySummary summary = obs::read_telemetry(path);
  ASSERT_EQ(summary.runs.size(), 1u);
  const obs::RunReport& run = summary.runs[0];
  EXPECT_EQ(run.gov_degrades, 1u);
  EXPECT_EQ(run.gov_probes, 1u);
  EXPECT_EQ(run.gov_probe_failures, 0u);
  EXPECT_EQ(run.gov_recoveries, 1u);
  EXPECT_EQ(run.gov_final_level, 0);
  EXPECT_EQ(run.gov_max_level, 1);
  std::remove(path.c_str());
}

// Golden governor trace: the transition sequence (time, kind, from, to) of
// the overload-recovery run is pinned to a committed CSV. Regenerate after
// an INTENDED ladder change with SBS_REGEN_GOLDEN=1, review, commit.
TEST(GovernedScheduler, TransitionSequenceMatchesGoldenCsv) {
  const std::string jsonl =
      testing::TempDir() + "/sbs_governor_golden.jsonl";
  const std::vector<GovernorEvent> events = run_overload_recovery(jsonl);
  std::remove(jsonl.c_str());

  std::vector<std::string> actual;
  for (const GovernorEvent& e : events) {
    std::ostringstream row;
    row << e.t << ',' << e.kind << ',' << e.from << ',' << e.to;
    actual.push_back(row.str());
  }

  const std::string path =
      std::string(SBS_TEST_DATA_DIR) + "/golden_governor_overload.csv";
  if (std::getenv("SBS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << "t,kind,from,to\n";
    for (const std::string& row : actual) out << row << '\n';
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with SBS_REGEN_GOLDEN=1 to create it";
  std::string line;
  std::getline(in, line);  // header
  std::vector<std::string> expected;
  while (std::getline(in, line))
    if (!line.empty()) expected.push_back(line);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(actual[i], expected[i]) << "transition " << i;
}

}  // namespace
}  // namespace sbs
