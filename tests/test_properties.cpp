// Property-based harness: seeded random workloads drive invariants that
// example-based unit tests cannot pin down — machine physics under every
// policy, ResourceProfile oversubscription, FCFS queue order across fault
// requeues, and telemetry-report reconciliation with the live run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/resource_profile.hpp"
#include "exp/policy_factory.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::check_feasible;
using test::job;
using test::trace_of;

/// Random open workload: bursty submits (so queues actually form), mixed
/// widths up to the full machine, runtimes from minutes to hours, and
/// occasional exact duplicates (tie-break surface for Lxf ordering).
Trace random_trace(std::uint64_t seed, std::size_t jobs, int capacity) {
  Rng rng(seed);
  std::vector<Job> js;
  Time t = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    if (rng.bernoulli(0.6)) t += static_cast<Time>(rng.uniform_int(0, 1200));
    const int nodes = static_cast<int>(rng.uniform_int(1, capacity));
    const Time runtime = static_cast<Time>(rng.uniform_int(kMinute, 4 * kHour));
    const Time requested =
        rng.bernoulli(0.5) ? runtime : runtime + static_cast<Time>(rng.uniform_int(0, kHour));
    js.push_back(job(static_cast<int>(i), t, nodes, runtime, requested));
    if (rng.bernoulli(0.2))  // same-instant duplicate shape
      js.push_back(job(static_cast<int>(i) + 1000, t, nodes, runtime, requested));
  }
  return trace_of(std::move(js), capacity);
}

// ---------------------------------------------------------------------------
// ResourceProfile: a random reserve/release workload can never oversubscribe

TEST(Properties, ResourceProfileNeverOversubscribes) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 7919);
    const int capacity = static_cast<int>(rng.uniform_int(1, 256));
    const Time origin = static_cast<Time>(rng.uniform_int(0, 100000));
    ResourceProfile profile(capacity, origin);

    // Shadow ledger of every accepted reservation, as a usage delta map.
    std::map<Time, int> delta;
    std::vector<std::tuple<Time, int, Time>> placed;
    for (int op = 0; op < 200; ++op) {
      const int nodes = static_cast<int>(rng.uniform_int(1, capacity));
      const Time duration = static_cast<Time>(rng.uniform_int(1, 6 * kHour));
      const Time from = origin + static_cast<Time>(rng.uniform_int(0, 12 * kHour));
      const Time start = profile.earliest_start(from, nodes, duration);
      ASSERT_GE(start, from);
      ASSERT_TRUE(profile.fits(start, nodes, duration));
      // earliest_start is tight: the same request cannot also fit a second
      // earlier (only probe one step back — full minimality is O(T) per op).
      if (start > from) {
        EXPECT_FALSE(profile.fits(start - 1, nodes, duration))
            << "earliest_start not minimal at op " << op;
      }
      profile.reserve(start, nodes, duration);
      delta[start] += nodes;
      delta[start + duration] -= nodes;
      placed.emplace_back(start, nodes, duration);
    }

    // The profile agrees with the shadow ledger at every boundary, and the
    // free count never drops below zero (capacity overlap).
    int used = 0;
    for (const auto& [at, d] : delta) {
      used += d;
      ASSERT_LE(used, capacity);
      EXPECT_EQ(profile.free_at(at), capacity - used)
          << "free-node drift at t=" << at << " (seed " << seed << ")";
      EXPECT_GE(profile.free_at(at), 0);
    }

    // Releasing everything restores the empty machine exactly.
    for (const auto& [start, nodes, duration] : placed)
      profile.release(start, nodes, duration);
    profile.compact();
    for (const auto& [at, d] : delta)
      EXPECT_EQ(profile.free_at(at), capacity);
  }
}

// ---------------------------------------------------------------------------
// Machine physics: every policy, random workloads, fault-free

TEST(Properties, SimulationRespectsMachinePhysics) {
  const char* kPolicies[] = {"FCFS-BF", "LXF-BF", "Selective-BF",
                             "DDS/lxf/dynB", "LDS/fcfs/dynB"};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng shape(seed);
    const int capacity = static_cast<int>(shape.uniform_int(8, 64));
    const Trace trace = random_trace(seed * 31, 40, capacity);
    for (const char* spec : kPolicies) {
      SCOPED_TRACE(std::string(spec) + " seed=" + std::to_string(seed));
      auto scheduler = make_policy(spec, /*node_limit=*/200, -1.0,
                                   /*threads=*/seed % 3);
      const SimResult r = simulate(trace, *scheduler);
      ASSERT_EQ(r.outcomes.size(), trace.jobs.size());
      // check_feasible throws on: start before submit, wrong runtime, or
      // any instant where the machine is oversubscribed.
      EXPECT_NO_THROW(check_feasible(r.outcomes, trace.capacity));
      for (const JobOutcome& o : r.outcomes) EXPECT_TRUE(o.completed);
    }
  }
}

// ---------------------------------------------------------------------------
// Fault requeues: the waiting queue stays in FCFS (submit, id) order

/// Pass-through policy that audits the queue order the simulator presents:
/// the waiting span must be (submit, id)-sorted at EVERY decision, which is
/// exactly the guarantee that a requeued job re-enters at its original
/// FCFS position rather than at the back of the queue.
class QueueOrderProbe final : public Scheduler {
 public:
  explicit QueueOrderProbe(std::unique_ptr<Scheduler> inner)
      : inner_(std::move(inner)) {}

  std::vector<int> select_jobs(const SchedulerState& state) override {
    for (std::size_t i = 1; i < state.waiting.size(); ++i) {
      const Job& a = *state.waiting[i - 1].job;
      const Job& b = *state.waiting[i].job;
      if (a.submit > b.submit || (a.submit == b.submit && a.id >= b.id))
        ++violations;
    }
    max_queue = std::max(max_queue, state.waiting.size());
    return inner_->select_jobs(state);
  }
  std::string name() const override { return inner_->name(); }
  SchedulerStats stats() const override { return inner_->stats(); }

  std::uint64_t violations = 0;
  std::size_t max_queue = 0;

 private:
  std::unique_ptr<Scheduler> inner_;
};

TEST(Properties, RequeuedJobsKeepSubmitOrder) {
  std::uint64_t total_requeues = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trace trace = random_trace(seed * 101, 50, 32);
    FaultSpec spec;
    spec.node_mtbf = 2 * kHour;
    spec.node_mttr = kHour;
    spec.min_block = 2;
    spec.max_block = 12;
    spec.job_kill_mtbf = 3 * kHour;
    spec.seed = seed;
    const FaultInjector injector = FaultInjector::from_spec(
        spec, trace.window_begin, trace.window_end, trace.capacity);
    SimConfig sim;
    sim.faults = &injector;
    sim.requeue = RequeuePolicy::Resubmit;

    QueueOrderProbe probe(make_policy(seed % 2 ? "LXF-BF" : "DDS/lxf/dynB",
                                      /*node_limit=*/150));
    const SimResult r = simulate(trace, probe, sim);
    EXPECT_EQ(probe.violations, 0u) << "queue left FCFS order (seed " << seed
                                    << ")";
    EXPECT_GT(probe.max_queue, 0u);
    total_requeues += r.fault_stats.jobs_requeued;

    // A restarted job still never starts before its submission.
    for (const JobOutcome& o : r.outcomes) {
      if (o.completed) {
        EXPECT_GE(o.start, o.job.submit);
      }
    }
  }
  // The property must actually have been exercised by the fault schedule.
  EXPECT_GT(total_requeues, 0u);
}

// ---------------------------------------------------------------------------
// Telemetry reports reconcile with live SchedulerStats on random runs

TEST(Properties, ReportReconcilesWithLiveStats) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t threads = (seed % 3) * 2;  // 0, 2, 4 workers
    const Trace trace = random_trace(seed * 977, 35, 24);
    auto scheduler =
        make_policy("DDS/lxf/dynB", /*node_limit=*/250, -1.0, threads);

    const std::string path = testing::TempDir() + "/sbs_prop_" +
                             std::to_string(seed) + ".jsonl";
    obs::Telemetry tel(std::make_unique<obs::JsonlSink>(path));
    SimConfig sim;
    sim.telemetry = &tel;
    const SimResult r = simulate(trace, *scheduler, sim);

    const std::vector<obs::RunReport> runs = obs::summarize_telemetry(path);
    std::remove(path.c_str());
    ASSERT_EQ(runs.size(), 1u);
    const obs::RunReport& rep = runs.front();
    const SchedulerStats& live = r.sched_stats;
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " threads=" + std::to_string(threads));

    EXPECT_EQ(rep.decisions, live.decisions);
    EXPECT_EQ(rep.nodes_visited, live.nodes_visited);
    EXPECT_EQ(rep.paths_explored, live.paths_explored);
    EXPECT_EQ(rep.think_time_us, live.think_time_us);
    EXPECT_EQ(rep.deadline_hits, live.deadline_hits);
    EXPECT_EQ(rep.max_think_time_us, live.max_think_time_us);
    EXPECT_EQ(rep.max_queue_depth, live.max_queue_depth);
    EXPECT_EQ(rep.submits, trace.jobs.size());
    EXPECT_EQ(rep.starts, rep.started_via_decisions);
    EXPECT_EQ(rep.starts, rep.finishes + rep.kills);

    // Parallel-search bookkeeping flows through the stream: the max
    // threads_used equals the configured worker count whenever some
    // decision actually ran the parallel engine, and a sequential run
    // never reports workers or speculation.
    EXPECT_LE(rep.max_threads_used, threads);
    if (threads == 0) {
      EXPECT_EQ(rep.max_threads_used, 0u);
      EXPECT_EQ(rep.speculative_nodes, 0u);
    } else if (rep.max_threads_used > 0) {
      EXPECT_EQ(rep.max_threads_used, threads);
    }
  }
}

}  // namespace
}  // namespace sbs
