#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "core/search.hpp"
#include "exp/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::job;
using test::trace_of;

/// Scriptable scheduler (same contract exercise as test_simulator).
class LambdaScheduler : public Scheduler {
 public:
  using Fn = std::function<std::vector<int>(const SchedulerState&)>;
  explicit LambdaScheduler(Fn fn) : fn_(std::move(fn)) {}
  std::vector<int> select_jobs(const SchedulerState& state) override {
    return fn_(state);
  }
  std::string name() const override { return "lambda"; }

 private:
  Fn fn_;
};

std::vector<int> greedy_fcfs(const SchedulerState& state) {
  std::vector<int> out;
  int free = state.free_nodes;
  for (const auto& w : state.waiting) {
    if (w.job->nodes <= free) {
      free -= w.job->nodes;
      out.push_back(w.job->id);
    } else {
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------- spec

TEST(FaultSpecParse, FullSpec) {
  const FaultSpec s =
      parse_fault_spec("mtbf:86400,mttr:3600,block:2-8,killmtbf:43200,seed:7");
  EXPECT_EQ(s.node_mtbf, 86400);
  EXPECT_EQ(s.node_mttr, 3600);
  EXPECT_EQ(s.min_block, 2);
  EXPECT_EQ(s.max_block, 8);
  EXPECT_EQ(s.job_kill_mtbf, 43200);
  EXPECT_EQ(s.seed, 7u);
}

TEST(FaultSpecParse, FixedBlock) {
  const FaultSpec s = parse_fault_spec("mtbf:1000,mttr:100,block:4");
  EXPECT_EQ(s.min_block, 4);
  EXPECT_EQ(s.max_block, 4);
}

TEST(FaultSpecParse, Rejections) {
  EXPECT_THROW(parse_fault_spec("mtbf:1000"), Error);        // mttr missing
  EXPECT_THROW(parse_fault_spec("bogus:1"), Error);          // unknown key
  EXPECT_THROW(parse_fault_spec("mtbf"), Error);             // no value
  EXPECT_THROW(parse_fault_spec("mtbf:xyz"), Error);         // not a number
  EXPECT_THROW(parse_fault_spec("mtbf:1,mttr:1,block:0"), Error);
  EXPECT_THROW(parse_fault_spec("mtbf:1,mttr:1,block:5-2"), Error);
}

// ------------------------------------------------------------ injector

FaultSpec stress_spec(std::uint64_t seed = 11) {
  FaultSpec s;
  s.node_mtbf = 2000;
  s.node_mttr = 1500;
  s.min_block = 1;
  s.max_block = 8;
  s.job_kill_mtbf = 5000;
  s.seed = seed;
  return s;
}

TEST(FaultInjector, SeededTraceIsDeterministic) {
  const FaultSpec spec = stress_spec();
  const auto a = FaultInjector::from_spec(spec, 0, 100000, 16);
  const auto b = FaultInjector::from_spec(spec, 0, 100000, 16);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].nodes, b.events()[i].nodes);
    EXPECT_EQ(a.events()[i].draw, b.events()[i].draw);
  }
  // A different seed produces a different trace.
  const auto c = FaultInjector::from_spec(stress_spec(12), 0, 100000, 16);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i)
    differs = a.events()[i].time != c.events()[i].time;
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, InvariantsHold) {
  const int capacity = 16;
  const auto inj = FaultInjector::from_spec(stress_spec(), 0, 200000, capacity);
  ASSERT_FALSE(inj.empty());
  // Sorted by time.
  EXPECT_TRUE(std::is_sorted(
      inj.events().begin(), inj.events().end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; }));
  // Down/up balance: replaying node events never reaches full-capacity down
  // and ends with every node back in service.
  int down = 0;
  int max_down = 0;
  for (const FaultEvent& e : inj.events()) {
    if (e.kind == FaultKind::NodeDown) down += e.nodes;
    if (e.kind == FaultKind::NodeUp) down -= e.nodes;
    EXPECT_GE(down, 0);
    max_down = std::max(max_down, down);
  }
  EXPECT_EQ(down, 0) << "every failed block must eventually be repaired";
  EXPECT_LT(max_down, capacity) << "at least one node must stay up";
  // Failures all land inside the horizon (repairs may exceed it).
  for (const FaultEvent& e : inj.events()) {
    if (e.kind == FaultKind::NodeDown) {
      EXPECT_LT(e.time, 200000);
    }
  }
}

TEST(FaultInjector, FromEventsRequiresSortedInput) {
  EXPECT_THROW(FaultInjector::from_events(
                   {FaultEvent{100, FaultKind::NodeDown, 1, -1, 0},
                    FaultEvent{50, FaultKind::NodeUp, 1, -1, 0}}),
               Error);
  EXPECT_THROW(FaultInjector::from_events(
                   {FaultEvent{100, FaultKind::NodeDown, 0, -1, 0}}),
               Error);
}

// ------------------------------------------------------- simulator core

TEST(FaultSim, NodeFailureKillsAndRequeuesOnce) {
  // One 4-node job on a 4-node machine; 2 nodes fail mid-run and return
  // 10 s later. The job is killed, requeued, and restarted from scratch.
  const Trace t = trace_of({job(0, 0, 4, 100)}, 4);
  const auto inj = FaultInjector::from_events(
      {FaultEvent{50, FaultKind::NodeDown, 2, -1, 0},
       FaultEvent{60, FaultKind::NodeUp, 2, -1, 0}});
  SimConfig cfg;
  cfg.faults = &inj;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s, cfg);
  EXPECT_EQ(r.outcomes[0].requeue_count, 1);
  EXPECT_TRUE(r.outcomes[0].completed);
  EXPECT_EQ(r.outcomes[0].start, 60);   // restarted when the nodes returned
  EXPECT_EQ(r.outcomes[0].end, 160);    // full runtime from scratch
  EXPECT_EQ(r.outcomes[0].lost_node_seconds, 4 * 50);
  EXPECT_EQ(r.fault_stats.node_failures, 1u);
  EXPECT_EQ(r.fault_stats.node_recoveries, 1u);
  EXPECT_EQ(r.fault_stats.jobs_killed, 1u);
  EXPECT_EQ(r.fault_stats.jobs_requeued, 1u);
  EXPECT_EQ(r.fault_stats.jobs_dropped, 0u);
  EXPECT_EQ(r.fault_stats.min_capacity, 2);
  EXPECT_DOUBLE_EQ(r.fault_stats.lost_node_seconds, 200.0);
}

TEST(FaultSim, DropPolicyLosesTheJob) {
  const Trace t = trace_of({job(0, 0, 4, 100)}, 4);
  const auto inj = FaultInjector::from_events(
      {FaultEvent{50, FaultKind::NodeDown, 2, -1, 0},
       FaultEvent{60, FaultKind::NodeUp, 2, -1, 0}});
  SimConfig cfg;
  cfg.faults = &inj;
  cfg.requeue = RequeuePolicy::Drop;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s, cfg);
  EXPECT_FALSE(r.outcomes[0].completed);
  EXPECT_EQ(r.outcomes[0].requeue_count, 0);
  EXPECT_EQ(r.outcomes[0].end, 50);  // terminated at the failure
  EXPECT_EQ(r.fault_stats.jobs_dropped, 1u);
  EXPECT_EQ(r.fault_stats.jobs_requeued, 0u);
}

TEST(FaultSim, MostRecentlyStartedJobIsTheVictim) {
  // Two 2-node jobs; a 2-node failure must kill the LATER-started one.
  const Trace t = trace_of({job(0, 0, 2, 100), job(1, 10, 2, 100)}, 4);
  const auto inj = FaultInjector::from_events(
      {FaultEvent{20, FaultKind::NodeDown, 2, -1, 0},
       FaultEvent{30, FaultKind::NodeUp, 2, -1, 0}});
  SimConfig cfg;
  cfg.faults = &inj;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s, cfg);
  EXPECT_EQ(r.outcomes[0].requeue_count, 0);  // survivor, undisturbed
  EXPECT_EQ(r.outcomes[0].end, 100);
  EXPECT_EQ(r.outcomes[1].requeue_count, 1);
  EXPECT_EQ(r.outcomes[1].start, 30);
  EXPECT_EQ(r.outcomes[1].end, 130);
  EXPECT_EQ(r.outcomes[1].lost_node_seconds, 2 * 10);
}

TEST(FaultSim, ExplicitJobKill) {
  const Trace t = trace_of({job(0, 0, 2, 100), job(1, 0, 1, 100)}, 4);
  const auto inj = FaultInjector::from_events(
      {FaultEvent{40, FaultKind::JobKill, 0, /*job_id=*/0, 0}});
  SimConfig cfg;
  cfg.faults = &inj;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s, cfg);
  // Capacity untouched, so the kill restarts immediately at t=40.
  EXPECT_EQ(r.outcomes[0].requeue_count, 1);
  EXPECT_EQ(r.outcomes[0].start, 40);
  EXPECT_EQ(r.outcomes[0].end, 140);
  EXPECT_EQ(r.outcomes[1].requeue_count, 0);
  EXPECT_EQ(r.fault_stats.min_capacity, 4);
}

TEST(FaultSim, JobKillOnIdleMachineIsANoOp) {
  const Trace t = trace_of({job(0, 10, 1, 100)}, 4);
  const auto inj = FaultInjector::from_events(
      {FaultEvent{5, FaultKind::JobKill, 0, -1, 123}});
  SimConfig cfg;
  cfg.faults = &inj;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s, cfg);
  EXPECT_EQ(r.fault_stats.jobs_killed, 0u);
  EXPECT_EQ(r.outcomes[0].start, 10);
}

TEST(FaultSim, CapacityNeverRecoversLeavesJobUnstarted) {
  // The repair never comes: the 4-node job parks forever and is recorded
  // as never started once every event source drains.
  const Trace t = trace_of({job(0, 0, 4, 100)}, 4);
  const auto inj = FaultInjector::from_events(
      {FaultEvent{50, FaultKind::NodeDown, 2, -1, 0}});
  SimConfig cfg;
  cfg.faults = &inj;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s, cfg);
  EXPECT_FALSE(r.outcomes[0].completed);
  EXPECT_EQ(r.outcomes[0].requeue_count, 1);  // killed, requeued, stranded
  EXPECT_EQ(r.fault_stats.jobs_unstarted, 1u);
  EXPECT_EQ(r.outcomes[0].start, r.outcomes[0].end);
}

TEST(FaultSim, FaultBeforeFirstArrivalAppliesInOrder) {
  // A failure on an empty machine must still shrink capacity before the
  // first arrival shows up (events are consumed in timeline order).
  const Trace t = trace_of({job(0, 100, 4, 50)}, 4);
  const auto inj = FaultInjector::from_events(
      {FaultEvent{10, FaultKind::NodeDown, 2, -1, 0},
       FaultEvent{200, FaultKind::NodeUp, 2, -1, 0}});
  SimConfig cfg;
  cfg.faults = &inj;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s, cfg);
  EXPECT_EQ(r.outcomes[0].start, 200);  // parked until the repair
  EXPECT_TRUE(r.outcomes[0].completed);
  EXPECT_EQ(r.fault_stats.min_capacity, 2);
}

TEST(FaultSim, FaultFreeRunsAreUnchanged) {
  // A null injector and an empty one must both reproduce the plain run.
  const Trace t = trace_of({job(0, 0, 2, 100), job(1, 10, 4, 50)}, 4);
  LambdaScheduler s(greedy_fcfs);
  const SimResult plain = simulate(t, s);
  const FaultInjector empty;
  SimConfig cfg;
  cfg.faults = &empty;
  const SimResult with_empty = simulate(t, s, cfg);
  for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
    EXPECT_EQ(plain.outcomes[i].start, with_empty.outcomes[i].start);
    EXPECT_EQ(plain.outcomes[i].end, with_empty.outcomes[i].end);
    EXPECT_TRUE(with_empty.outcomes[i].completed);
    EXPECT_EQ(with_empty.outcomes[i].requeue_count, 0);
  }
  EXPECT_EQ(with_empty.fault_stats.jobs_killed, 0u);
  EXPECT_EQ(with_empty.fault_stats.min_capacity, 4);
}

// ----------------------------------------------------- the policy zoo

/// A deterministic mixed workload that keeps a 16-node machine busy and
/// queued while faults tear nodes out from under it.
Trace stress_trace() {
  Rng rng(99);
  std::vector<Job> jobs;
  Time submit = 0;
  for (int i = 0; i < 80; ++i) {
    submit += static_cast<Time>(rng.uniform_int(0, 400));
    const int nodes = static_cast<int>(rng.uniform_int(1, 16));
    const Time runtime = static_cast<Time>(rng.uniform_int(60, 2400));
    jobs.push_back(job(i, submit, nodes, runtime));
  }
  return trace_of(std::move(jobs), 16);
}

TEST(FaultSim, EveryPolicySurvivesAFaultyTrace) {
  const Trace t = stress_trace();
  const auto inj = FaultInjector::from_spec(stress_spec(), t.window_begin,
                                            t.window_end, t.capacity);
  ASSERT_FALSE(inj.empty());
  const std::vector<std::string> specs = {
      "FCFS-BF",     "FCFS-cons-BF",   "LXF-BF",      "SJF-BF",
      "LXF&W-BF",    "Selective-BF",   "Lookahead",   "Slack-BF",
      "MultiQueue",  "MultiQueue-aged", "Weighted-BF", "DDS/lxf/dynB",
      "LDS/fcfs/w=100h"};
  for (const RequeuePolicy requeue :
       {RequeuePolicy::Resubmit, RequeuePolicy::Drop}) {
    for (const auto& spec : specs) {
      SimConfig cfg;
      cfg.faults = &inj;
      cfg.requeue = requeue;
      auto policy = make_policy(spec, /*node_limit=*/200);
      SimResult r;
      ASSERT_NO_THROW(r = simulate(t, *policy, cfg)) << spec;
      // Every outcome is accounted for: completed jobs ran their full
      // runtime on their final attempt; incomplete ones were dropped or
      // stranded.
      std::uint64_t incomplete = 0;
      for (const auto& o : r.outcomes) {
        if (o.completed) {
          EXPECT_EQ(o.end - o.start, o.job.runtime) << spec;
        } else {
          ++incomplete;
        }
        EXPECT_GE(o.requeue_count, 0) << spec;
      }
      EXPECT_EQ(incomplete,
                r.fault_stats.jobs_dropped + r.fault_stats.jobs_unstarted)
          << spec;
      EXPECT_EQ(r.fault_stats.jobs_killed,
                r.fault_stats.jobs_requeued + r.fault_stats.jobs_dropped)
          << spec;
      EXPECT_GE(r.fault_stats.node_failures, 1u) << spec;
    }
  }
}

TEST(FaultSim, BackfillParksWiderThanCapacityJobs) {
  // An 8-node job is killed by a failure that leaves only 2 nodes; the
  // backfill policy must park it (not wedge) and run the narrow job.
  const Trace t = trace_of({job(0, 0, 8, 100), job(1, 10, 2, 30)}, 8);
  const auto inj = FaultInjector::from_events(
      {FaultEvent{20, FaultKind::NodeDown, 6, -1, 0},
       FaultEvent{200, FaultKind::NodeUp, 6, -1, 0}});
  SimConfig cfg;
  cfg.faults = &inj;
  auto policy = make_policy("FCFS-BF");
  const SimResult r = simulate(t, *policy, cfg);
  EXPECT_EQ(r.outcomes[1].start, 20);   // narrow job runs on the remnant
  EXPECT_EQ(r.outcomes[0].start, 200);  // wide job waits for the repair
  EXPECT_TRUE(r.outcomes[0].completed);
  EXPECT_EQ(r.outcomes[0].requeue_count, 1);
}

TEST(FaultSim, SearchSchedulerHandlesAllParkedQueue) {
  // Same scenario under the search policy: while every queued job is
  // wider than the degraded machine the search problem is empty and the
  // scheduler must simply start nothing.
  const Trace t = trace_of({job(0, 0, 8, 100), job(1, 10, 2, 30)}, 8);
  const auto inj = FaultInjector::from_events(
      {FaultEvent{20, FaultKind::NodeDown, 6, -1, 0},
       FaultEvent{200, FaultKind::NodeUp, 6, -1, 0}});
  SimConfig cfg;
  cfg.faults = &inj;
  auto policy = make_policy("DDS/lxf/dynB");
  SimResult r;
  ASSERT_NO_THROW(r = simulate(t, *policy, cfg));
  EXPECT_EQ(r.outcomes[0].start, 200);
  EXPECT_TRUE(r.outcomes[0].completed);
}

// ------------------------------------------------------ search deadline

TEST(SearchDeadline, ZeroDeadlineStillReturnsCompleteSchedule) {
  test::ProblemBuilder b(8);
  for (int i = 0; i < 6; ++i) b.wait(/*submit=*/0, /*nodes=*/2, /*runtime=*/100);
  const SearchProblem p = b.build();
  SearchConfig cfg;
  cfg.node_limit = 1000000;
  cfg.deadline_ms = 0.0;
  const SearchResult r = run_search(p, cfg);
  ASSERT_EQ(r.order.size(), p.size());  // the heuristic path is complete
  ASSERT_EQ(r.starts.size(), p.size());
  EXPECT_GE(r.paths_completed, 1u);
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_FALSE(r.exhausted);
}

TEST(SearchDeadline, DisabledByDefault) {
  test::ProblemBuilder b(8);
  for (int i = 0; i < 4; ++i) b.wait(0, 2, 100);
  const SearchResult r = run_search(b.build(), SearchConfig{});
  EXPECT_FALSE(r.deadline_hit);
  EXPECT_TRUE(r.exhausted);  // tiny tree, default budget covers it
}

TEST(SearchDeadline, DfsHonorsDeadlineAfterFirstPath) {
  test::ProblemBuilder b(8);
  for (int i = 0; i < 8; ++i) b.wait(0, 2, 100);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dfs;
  cfg.node_limit = 100000000;  // the deadline, not the node cap, must bind
  cfg.deadline_ms = 0.0;
  const SearchResult r = run_search(b.build(), cfg);
  ASSERT_EQ(r.order.size(), 8u);
  EXPECT_GE(r.paths_completed, 1u);
  EXPECT_TRUE(r.deadline_hit);
}

TEST(SearchDeadline, SchedulerCountsDeadlineHits) {
  // Three queued jobs at t=0 give the per-decision search a non-trivial
  // tree; a 0 ms deadline degrades it to the heuristic path and counts.
  const Trace t =
      trace_of({job(0, 0, 2, 50), job(1, 0, 2, 50), job(2, 0, 2, 80)}, 4);
  auto policy = make_search_policy(SearchAlgo::Dds, Branching::Lxf,
                                   BoundSpec::dynamic_bound(),
                                   /*node_limit=*/100000, /*prune=*/false,
                                   /*deadline_ms=*/0.0);
  SimResult r;
  ASSERT_NO_THROW(r = simulate(t, *policy, SimConfig{}));
  EXPECT_GE(r.sched_stats.deadline_hits, 1u);
  for (const auto& o : r.outcomes) EXPECT_TRUE(o.completed);
}

TEST(SearchDeadline, FactoryThreadsDeadlineThrough) {
  auto policy = make_policy("DDS/lxf/dynB", 500, 12.5);
  const auto* search = dynamic_cast<const SearchScheduler*>(policy.get());
  ASSERT_NE(search, nullptr);
  EXPECT_DOUBLE_EQ(search->config().search.deadline_ms, 12.5);
}

// ----------------------------------------------------------- chaos spec

TEST(ChaosSpecParse, FullSpec) {
  const ChaosSpec s = parse_chaos_spec(
      "mtbf:259200,mttr:7200,linkmtbf:86400,linkmttr:3600,seed:9");
  EXPECT_EQ(s.outage_mtbf, 259200);
  EXPECT_EQ(s.outage_mttr, 7200);
  EXPECT_EQ(s.partition_mtbf, 86400);
  EXPECT_EQ(s.partition_mttr, 3600);
  EXPECT_EQ(s.seed, 9u);
}

TEST(ChaosSpecParse, PartitionOnlySpec) {
  const ChaosSpec s = parse_chaos_spec("linkmtbf:86400,linkmttr:600");
  EXPECT_EQ(s.outage_mtbf, 0);
  EXPECT_EQ(s.partition_mtbf, 86400);
}

TEST(ChaosSpecParse, Rejections) {
  EXPECT_THROW(parse_chaos_spec(""), Error);               // nothing enabled
  EXPECT_THROW(parse_chaos_spec("seed:3"), Error);         // nothing enabled
  EXPECT_THROW(parse_chaos_spec("mtbf:1000"), Error);      // mttr missing
  EXPECT_THROW(parse_chaos_spec("linkmtbf:1000"), Error);  // linkmttr missing
  EXPECT_THROW(parse_chaos_spec("bogus:1"), Error);        // unknown key
  EXPECT_THROW(parse_chaos_spec("mtbf"), Error);           // no value
  EXPECT_THROW(parse_chaos_spec("mtbf:xyz"), Error);       // not a number
  EXPECT_THROW(parse_chaos_spec("mtbf:-5,mttr:10"), Error);
}

// ------------------------------------------------------- chaos schedule

ChaosSpec chaos_spec(std::uint64_t seed = 5) {
  ChaosSpec s;
  s.outage_mtbf = 20000;
  s.outage_mttr = 4000;
  s.partition_mtbf = 30000;
  s.partition_mttr = 2000;
  s.seed = seed;
  return s;
}

TEST(ChaosSchedule, SeededScheduleIsDeterministic) {
  const auto a = ChaosSchedule::from_spec(chaos_spec(), 0, 400000, 3);
  const auto b = ChaosSchedule::from_spec(chaos_spec(), 0, 400000, 3);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].member, b.events()[i].member);
  }
  const auto c = ChaosSchedule::from_spec(chaos_spec(6), 0, 400000, 3);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i)
    differs = a.events()[i].time != c.events()[i].time;
  EXPECT_TRUE(differs);
}

TEST(ChaosSchedule, EveryOutageIsPairedAndMembersAreInRange) {
  const int members = 4;
  const auto sched = ChaosSchedule::from_spec(chaos_spec(), 0, 600000, members);
  ASSERT_FALSE(sched.empty());
  EXPECT_TRUE(std::is_sorted(sched.events().begin(), sched.events().end(),
                             [](const ChaosEvent& a, const ChaosEvent& b) {
                               return a.time < b.time;
                             }));
  // Replay per member, per kind: Down/Up alternate and every outage and
  // partition eventually ends (the schedule never strands a member dark).
  std::vector<int> down(members, 0);
  std::vector<int> cut(members, 0);
  for (const ChaosEvent& e : sched.events()) {
    ASSERT_GE(e.member, 0);
    ASSERT_LT(e.member, members);
    switch (e.kind) {
      case ChaosKind::MemberDown:
        EXPECT_EQ(down[e.member], 0);
        down[e.member] = 1;
        break;
      case ChaosKind::MemberUp:
        EXPECT_EQ(down[e.member], 1);
        down[e.member] = 0;
        break;
      case ChaosKind::LinkDown:
        EXPECT_EQ(cut[e.member], 0);
        cut[e.member] = 1;
        break;
      case ChaosKind::LinkUp:
        EXPECT_EQ(cut[e.member], 1);
        cut[e.member] = 0;
        break;
    }
    // Blackouts only begin inside the horizon (recoveries may exceed it).
    if (e.kind == ChaosKind::MemberDown || e.kind == ChaosKind::LinkDown) {
      EXPECT_LT(e.time, 600000);
    }
  }
  for (int m = 0; m < members; ++m) {
    EXPECT_EQ(down[m], 0) << "member " << m << " never recovered";
    EXPECT_EQ(cut[m], 0) << "member " << m << " link never healed";
  }
}

TEST(ChaosSchedule, FromEventsValidatesOrderingAndPairing) {
  // Sorted, paired input is accepted.
  ASSERT_NO_THROW(ChaosSchedule::from_events(
      {ChaosEvent{100, ChaosKind::MemberDown, 0},
       ChaosEvent{200, ChaosKind::MemberUp, 0}}));
  // Unsorted input is rejected.
  EXPECT_THROW(ChaosSchedule::from_events(
                   {ChaosEvent{200, ChaosKind::MemberUp, 0},
                    ChaosEvent{100, ChaosKind::MemberDown, 0}}),
               Error);
  // An Up with no preceding Down is rejected.
  EXPECT_THROW(
      ChaosSchedule::from_events({ChaosEvent{100, ChaosKind::MemberUp, 0}}),
      Error);
  // A second Down for an already-dark member is rejected.
  EXPECT_THROW(ChaosSchedule::from_events(
                   {ChaosEvent{100, ChaosKind::LinkDown, 1},
                    ChaosEvent{150, ChaosKind::LinkDown, 1}}),
               Error);
}

}  // namespace
}  // namespace sbs
