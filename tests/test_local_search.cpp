#include "core/local_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::ProblemBuilder;

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

TEST(LocalSearch, NeverWorseThanSeed) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    ProblemBuilder b(8);
    const int n = static_cast<int>(rng.uniform_int(2, 8));
    for (int i = 0; i < n; ++i)
      b.wait(-static_cast<Time>(rng.uniform_int(0, 4 * kHour)),
             static_cast<int>(rng.uniform_int(1, 8)),
             static_cast<Time>(rng.uniform_int(kMinute, 4 * kHour)),
             static_cast<Time>(rng.uniform_int(0, kHour)));
    const SearchProblem p = b.build();
    const auto seed = identity_order(p.size());
    const BuiltSchedule seeded = build_schedule(p, seed);
    const LocalSearchResult refined = local_search(p, seed);
    EXPECT_FALSE(objective_less(seeded.value, refined.value));
  }
}

TEST(LocalSearch, FindsTheObviousSwap) {
  // Two 3-node jobs on a 4-node machine: only one can run now. The seed
  // order runs the slack job (100h bound) first and pushes the urgent job
  // (1h bound) to 4h of wait — 3h of excess. Swapping them zeroes the
  // excess; one adjacent swap must find that.
  ProblemBuilder b(4);
  b.wait(0, 3, 4 * kHour, 100 * kHour)  // slack job, considered first
      .wait(0, 3, 4 * kHour, kHour);    // urgent job
  const SearchProblem p = b.build();
  const BuiltSchedule seeded = build_schedule(p, identity_order(2));
  EXPECT_GT(seeded.value.excess_h, 0.0);
  const LocalSearchResult r = local_search(p, identity_order(2));
  EXPECT_EQ(r.starts[1], 0);  // the urgent job runs immediately
  EXPECT_DOUBLE_EQ(r.value.excess_h, 0.0);
  EXPECT_GE(r.improvements, 1u);
}

TEST(LocalSearch, RespectsEvaluationBudget) {
  ProblemBuilder b(8);
  for (int i = 0; i < 8; ++i) b.wait(-kHour, 3, kHour, kMinute);
  const SearchProblem p = b.build();
  LocalSearchConfig cfg;
  cfg.max_evaluations = 10;
  const LocalSearchResult r = local_search(p, identity_order(8), cfg);
  EXPECT_LE(r.evaluations, 10u);
}

TEST(LocalSearch, SingleJobIsTrivial) {
  ProblemBuilder b(4);
  b.wait(0, 2, kHour);
  const SearchProblem p = b.build();
  const LocalSearchResult r = local_search(p, identity_order(1));
  EXPECT_EQ(r.order, identity_order(1));
  EXPECT_EQ(r.evaluations, 1u);
}

TEST(LocalSearch, RejectsWrongSeedSize) {
  ProblemBuilder b(4);
  b.wait(0, 2, kHour).wait(0, 2, kHour);
  const SearchProblem p = b.build();
  EXPECT_THROW(local_search(p, identity_order(1)), Error);
}

TEST(LocalSearch, ResultOrderIsPermutationAndRebuilds) {
  Rng rng(9);
  ProblemBuilder b(16);
  for (int i = 0; i < 7; ++i)
    b.wait(-static_cast<Time>(rng.uniform_int(0, 2 * kHour)),
           static_cast<int>(rng.uniform_int(1, 16)),
           static_cast<Time>(rng.uniform_int(kMinute, 2 * kHour)),
           static_cast<Time>(rng.uniform_int(0, kHour)));
  const SearchProblem p = b.build();
  const LocalSearchResult r = local_search(p, identity_order(7));
  std::vector<std::size_t> sorted = r.order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, identity_order(7));
  const BuiltSchedule rebuilt = build_schedule(p, r.order);
  EXPECT_EQ(rebuilt.starts, r.starts);
}

TEST(LocalSearch, DeterministicGivenSeed) {
  ProblemBuilder b(8);
  for (int i = 0; i < 6; ++i)
    b.wait(-static_cast<Time>(i) * kHour, (i % 3) + 1, kHour, kMinute);
  const SearchProblem p = b.build();
  LocalSearchConfig cfg;
  cfg.seed = 42;
  const LocalSearchResult a = local_search(p, identity_order(6), cfg);
  const LocalSearchResult c = local_search(p, identity_order(6), cfg);
  EXPECT_EQ(a.order, c.order);
  EXPECT_EQ(a.evaluations, c.evaluations);
}

TEST(SearchThenRefine, AtLeastAsGoodAsTreeSearchAlone) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    ProblemBuilder b(16);
    const int n = static_cast<int>(rng.uniform_int(3, 9));
    for (int i = 0; i < n; ++i)
      b.wait(-static_cast<Time>(rng.uniform_int(0, 6 * kHour)),
             static_cast<int>(rng.uniform_int(1, 16)),
             static_cast<Time>(rng.uniform_int(kMinute, 6 * kHour)),
             static_cast<Time>(rng.uniform_int(0, 2 * kHour)));
    const SearchProblem p = b.build();
    SearchConfig sc;
    sc.algo = SearchAlgo::Dds;
    sc.branching = Branching::Lxf;
    sc.node_limit = 50;
    const SearchResult tree = run_search(p, sc);
    const LocalSearchResult hybrid = search_then_refine(p, sc);
    EXPECT_FALSE(objective_less(tree.value, hybrid.value));
  }
}

}  // namespace
}  // namespace sbs
