// Tests for the paper-§1 baseline schedulers: Maui-style weighted
// priority, PBS/LSF-style queue priority, and Talby/Feitelson slack-based
// backfill.

#include <gtest/gtest.h>

#include "policies/multi_queue.hpp"
#include "policies/slack_backfill.hpp"
#include "policies/weighted_priority.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::check_feasible;
using test::job;
using test::trace_of;

// ---------------------------------------------------------------- weighted

TEST(WeightedPriority, PureWaitWeightIsFcfs) {
  // With only the wait term, priority order equals arrival order.
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 10, 4, 100),
                            job(2, 20, 4, 100)},
                           4);
  WeightedPriorityScheduler s;  // w_wait = 1, everything else 0
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[0].start, 0);
  EXPECT_EQ(r.outcomes[1].start, 100);
  EXPECT_EQ(r.outcomes[2].start, 200);
}

TEST(WeightedPriority, RuntimePenaltyFavorsShortJobs) {
  WeightedPriorityConfig cfg;
  cfg.w_wait = 0.0;
  cfg.w_runtime = 1.0;
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 1, 4, 10 * kHour),
                            job(2, 2, 4, kMinute)},
                           4);
  WeightedPriorityScheduler s(cfg);
  const SimResult r = simulate(t, s);
  EXPECT_LT(r.outcomes[2].start, r.outcomes[1].start);
}

TEST(WeightedPriority, NodeWeightFavorsWideJobs) {
  WeightedPriorityConfig cfg;
  cfg.w_wait = 0.0;
  cfg.w_nodes = 1.0;
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 1, 1, 100),
                            job(2, 2, 4, 100)},
                           4);
  WeightedPriorityScheduler s(cfg);
  const SimResult r = simulate(t, s);
  // The wide j2 outranks the narrow j1 at the drain point.
  EXPECT_EQ(r.outcomes[2].start, 100);
  EXPECT_GE(r.outcomes[1].start, 100);
}

TEST(WeightedPriority, PriorityOfCombinesTerms) {
  WeightedPriorityConfig cfg;
  cfg.w_wait = 2.0;
  cfg.w_xfactor = 3.0;
  cfg.w_runtime = 1.0;
  cfg.w_nodes = 0.5;
  WeightedPriorityScheduler s(cfg);
  const Job j = job(0, 0, 8, 2 * kHour);
  WaitingJob w{&j, j.runtime};
  // At now = 2h: wait_h = 2, xfactor = 2, est_h = 2, nodes = 8.
  EXPECT_DOUBLE_EQ(s.priority_of(w, 2 * kHour), 2 * 2 + 3 * 2 - 1 * 2 + 0.5 * 8);
}

TEST(WeightedPriority, NameEncodesWeights) {
  WeightedPriorityConfig cfg;
  cfg.w_xfactor = 2.5;
  WeightedPriorityScheduler s(cfg);
  EXPECT_NE(s.name().find("x=2.5"), std::string::npos);
}

TEST(WeightedPriority, RandomWorkloadFeasible) {
  Rng rng(64);
  std::vector<Job> jobs;
  Time submit = 0;
  for (int i = 0; i < 80; ++i) {
    submit += static_cast<Time>(rng.uniform_int(0, 200));
    jobs.push_back(job(i, submit, static_cast<int>(rng.uniform_int(1, 16)),
                       static_cast<Time>(rng.uniform_int(1, 1500))));
  }
  const Trace t = trace_of(std::move(jobs), 16);
  WeightedPriorityConfig cfg;
  cfg.w_wait = 1.0;
  cfg.w_xfactor = 0.5;
  cfg.w_runtime = 0.2;
  WeightedPriorityScheduler s(cfg);
  const SimResult r = simulate(t, s);
  EXPECT_NO_THROW(check_feasible(r.outcomes, 16));
}

// -------------------------------------------------------------- multiqueue

TEST(MultiQueue, RoutesByEstimate) {
  MultiQueueScheduler s;
  EXPECT_EQ(s.queue_of(kMinute), 0u);
  EXPECT_EQ(s.queue_of(kHour), 0u);
  EXPECT_EQ(s.queue_of(kHour + 1), 1u);
  EXPECT_EQ(s.queue_of(5 * kHour), 1u);
  EXPECT_EQ(s.queue_of(12 * kHour), 2u);
}

TEST(MultiQueue, ShortQueueJumpsLongQueue) {
  // A short job submitted later overtakes a long job at the drain point.
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 1, 4, 10 * kHour),
                            job(2, 2, 4, 30 * kMinute)},
                           4);
  MultiQueueScheduler s;
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[2].start, 100);
  EXPECT_EQ(r.outcomes[1].start, 100 + 30 * kMinute);
}

TEST(MultiQueue, LongJobsCanStarveWithoutAging) {
  // A steady stream of short jobs keeps the long job waiting while the
  // short queue drains first at every decision.
  std::vector<Job> jobs;
  jobs.push_back(job(0, 0, 4, kHour));            // warms the machine
  jobs.push_back(job(1, 1, 4, 10 * kHour));       // long, queue 2
  for (int i = 2; i < 12; ++i)                    // shorts, queue 0
    jobs.push_back(job(i, 2 + i, 4, kHour));
  const Trace t = trace_of(std::move(jobs), 4);
  MultiQueueScheduler s;
  const SimResult r = simulate(t, s);
  // Every short job starts before the long one.
  for (int i = 2; i < 12; ++i)
    EXPECT_LT(r.outcomes[i].start, r.outcomes[1].start);
}

TEST(MultiQueue, AgingRescuesTheLongJob) {
  std::vector<Job> jobs;
  jobs.push_back(job(0, 0, 4, kHour));
  jobs.push_back(job(1, 1, 4, 10 * kHour));
  for (int i = 2; i < 12; ++i) jobs.push_back(job(i, 2 + i, 4, kHour));
  const Trace t = trace_of(std::move(jobs), 4);

  MultiQueueConfig aged;
  aged.aging_limit = 3 * kHour;
  MultiQueueScheduler with_aging(aged);
  const SimResult r_aged = simulate(t, with_aging);
  MultiQueueScheduler without;
  const SimResult r_plain = simulate(t, without);
  EXPECT_LT(r_aged.outcomes[1].start, r_plain.outcomes[1].start);
}

TEST(MultiQueue, NameReflectsConfig) {
  EXPECT_EQ(MultiQueueScheduler().name(), "MultiQueue(3q)");
  MultiQueueConfig cfg;
  cfg.aging_limit = kHour;
  EXPECT_EQ(MultiQueueScheduler(cfg).name(), "MultiQueue(3q,aged)");
}

TEST(MultiQueue, RejectsUnsortedBounds) {
  MultiQueueConfig cfg;
  cfg.queue_bounds = {5 * kHour, kHour};
  EXPECT_THROW(MultiQueueScheduler{cfg}, Error);
}

// ------------------------------------------------------------------ slack

TEST(SlackBackfill, PromisesDeadlineOnFirstSight) {
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 10, 4, 100)}, 4);
  SlackBackfillConfig cfg;
  cfg.slack_factor = 1.0;
  cfg.min_slack = 50;
  SlackBackfillScheduler s(cfg);
  // Drive one decision manually via the simulator; after t=10 the waiting
  // job must hold a deadline of projected start (100) + slack (100).
  struct Probe {
    static void run(const Trace& trace, SlackBackfillScheduler& sched) {
      simulate(trace, sched);
    }
  };
  Probe::run(t, s);
  // j1 started at 100 so its promise was erased; re-check via behaviour:
  // with a huge backlog the policy still made progress (no throw).
  SUCCEED();
}

TEST(SlackBackfill, ZeroSlackBlocksDelayingBackfill) {
  // j2 would delay j1's projected start by 15 s; with zero slack it may
  // not backfill, with generous slack it may.
  const Trace base = trace_of({job(0, 0, 3, 100), job(1, 10, 4, 100),
                               job(2, 20, 1, 95)},
                              4);
  SlackBackfillConfig strict;
  strict.slack_factor = 0.0;
  strict.min_slack = 0;
  SlackBackfillScheduler s_strict(strict);
  const SimResult r_strict = simulate(base, s_strict);
  EXPECT_GE(r_strict.outcomes[2].start, 100);  // blocked
  EXPECT_EQ(r_strict.outcomes[1].start, 100);

  SlackBackfillConfig loose;
  loose.slack_factor = 0.0;
  loose.min_slack = kHour;  // 1h of slack allows the 15s delay
  SlackBackfillScheduler s_loose(loose);
  const SimResult r_loose = simulate(base, s_loose);
  EXPECT_EQ(r_loose.outcomes[2].start, 20);  // backfilled
  EXPECT_GE(r_loose.outcomes[1].start, 100);
  EXPECT_LE(r_loose.outcomes[1].wait(), 90 + kHour);  // promise held
}

TEST(SlackBackfill, DelayIsBoundedByPromisePlusSlack) {
  Rng rng(77);
  std::vector<Job> jobs;
  Time submit = 0;
  for (int i = 0; i < 60; ++i) {
    submit += static_cast<Time>(rng.uniform_int(0, 300));
    jobs.push_back(job(i, submit, static_cast<int>(rng.uniform_int(1, 8)),
                       static_cast<Time>(rng.uniform_int(60, 2000))));
  }
  const Trace t = trace_of(std::move(jobs), 8);
  SlackBackfillScheduler s;
  const SimResult r = simulate(t, s);
  EXPECT_NO_THROW(check_feasible(r.outcomes, 8));
}

TEST(SlackBackfill, UnknownJobHasZeroDeadline) {
  SlackBackfillScheduler s;
  EXPECT_EQ(s.deadline_of(12345), 0);
}

TEST(SlackBackfill, RejectsBadConfig) {
  SlackBackfillConfig cfg;
  cfg.slack_factor = -1.0;
  EXPECT_THROW(SlackBackfillScheduler{cfg}, Error);
  SlackBackfillConfig cfg2;
  cfg2.max_protected = 0;
  EXPECT_THROW(SlackBackfillScheduler{cfg2}, Error);
}

}  // namespace
}  // namespace sbs
