// Differential harness for the parallel search engine: for a seeded matrix
// of workloads x {LDS,DDS} x {fcfs,lxf} x {1,2,4,8} threads, the parallel
// result must be IDENTICAL to the sequential engine's — schedule, objective
// value, anytime profile and visited-node accounting. Thread-count
// invariance is the contract that makes --search-threads safe to deploy:
// a parallel scheduler that drifts from the sequential one is untestable.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/search.hpp"
#include "core/search_scheduler.hpp"
#include "exp/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sbs {
namespace {

using test::ProblemBuilder;

/// Seeded random decision point: jobs of mixed width/length, some already
/// waiting a while (distinct slowdowns) and some submitted together in
/// identical shapes (exact slowdown ties — the Lxf tie-break regression
/// surface), over a partially busy machine.
ProblemBuilder random_problem(std::uint64_t seed, std::size_t jobs,
                              int capacity) {
  Rng rng(seed);
  ProblemBuilder b(capacity, /*now=*/static_cast<Time>(36000));
  b.busy(static_cast<int>(rng.uniform_int(0, capacity / 2)),
         static_cast<Time>(rng.uniform_int(60, 4 * kHour)));
  for (std::size_t i = 0; i < jobs; ++i) {
    const Time submit = static_cast<Time>(rng.uniform_int(0, 36000));
    const int nodes = static_cast<int>(rng.uniform_int(1, capacity));
    const Time runtime = static_cast<Time>(rng.uniform_int(kMinute, 8 * kHour));
    const Time bound = static_cast<Time>(rng.uniform_int(1, 50) * kHour);
    b.wait(submit, nodes, runtime, bound);
    if (rng.bernoulli(0.3)) b.wait(submit, nodes, runtime, bound);  // tie twin
  }
  return b;
}

void expect_identical(const SearchResult& seq, const SearchResult& par,
                      std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(seq.order, par.order);
  EXPECT_EQ(seq.starts, par.starts);
  EXPECT_EQ(seq.value.excess_h, par.value.excess_h);
  EXPECT_EQ(seq.value.avg_bsld, par.value.avg_bsld);
  EXPECT_EQ(seq.nodes_visited, par.nodes_visited);
  EXPECT_EQ(seq.paths_completed, par.paths_completed);
  EXPECT_EQ(seq.iterations_started, par.iterations_started);
  EXPECT_EQ(seq.paths_per_iteration, par.paths_per_iteration);
  EXPECT_EQ(seq.exhausted, par.exhausted);
  EXPECT_FALSE(par.deadline_hit);
  ASSERT_EQ(seq.improvements.size(), par.improvements.size());
  for (std::size_t i = 0; i < seq.improvements.size(); ++i) {
    SCOPED_TRACE("improvement " + std::to_string(i));
    EXPECT_EQ(seq.improvements[i].nodes, par.improvements[i].nodes);
    EXPECT_EQ(seq.improvements[i].path, par.improvements[i].path);
    EXPECT_EQ(seq.improvements[i].value.excess_h,
              par.improvements[i].value.excess_h);
    EXPECT_EQ(seq.improvements[i].value.avg_bsld,
              par.improvements[i].value.avg_bsld);
    EXPECT_EQ(seq.improvements[i].discrepancies,
              par.improvements[i].discrepancies);
  }
  EXPECT_EQ(par.threads_used, threads);
  ASSERT_EQ(par.worker_nodes.size(), threads);
  std::size_t speculative = 0;
  for (std::size_t w : par.worker_nodes) speculative += w;
  // Workers may overshoot the canonical cut (discarded speculation) but
  // never undershoot it: everything the merge accepted beyond iteration 0
  // (which runs on the calling thread, n nodes) was explored by a worker.
  const std::size_t iter0 = par.order.size();
  EXPECT_GE(speculative, par.nodes_visited - std::min(par.nodes_visited, iter0));
}

class SearchParallelMatrix
    : public ::testing::TestWithParam<std::tuple<SearchAlgo, Branching>> {};

TEST_P(SearchParallelMatrix, MatchesSequentialAcrossThreadCounts) {
  const auto [algo, branching] = GetParam();
  const std::size_t kJobs[] = {2, 5, 9, 13};
  const std::size_t kBudgets[] = {1, 7, 60, 400, 100000};
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const std::size_t jobs : kJobs) {
      for (const std::size_t budget : kBudgets) {
        const ProblemBuilder b =
            random_problem(seed * 977, jobs, /*capacity=*/64);
        const SearchProblem problem = b.build();
        SearchConfig cfg;
        cfg.algo = algo;
        cfg.branching = branching;
        cfg.node_limit = budget;
        const SearchResult seq = run_search(problem, cfg);
        EXPECT_EQ(seq.threads_used, 0u);
        EXPECT_TRUE(seq.worker_nodes.empty());
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
          SCOPED_TRACE("seed=" + std::to_string(seed) +
                       " jobs=" + std::to_string(jobs) +
                       " budget=" + std::to_string(budget));
          SearchConfig par_cfg = cfg;
          par_cfg.threads = threads;
          expect_identical(seq, run_search(problem, par_cfg), threads);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgoBranching, SearchParallelMatrix,
    ::testing::Combine(::testing::Values(SearchAlgo::Lds, SearchAlgo::Dds),
                       ::testing::Values(Branching::Fcfs, Branching::Lxf)),
    [](const auto& suite_info) {
      return algo_name(std::get<0>(suite_info.param)) + "_" +
             branching_name(std::get<1>(suite_info.param));
    });

TEST(SearchParallel, ExternalPoolMatchesTransientPool) {
  const ProblemBuilder b = random_problem(4242, 10, 128);
  const SearchProblem problem = b.build();
  SearchConfig cfg;
  cfg.node_limit = 500;
  cfg.threads = 4;
  ThreadPool pool(4);
  const SearchResult with_pool = run_search(problem, cfg, &pool);
  const SearchResult transient = run_search(problem, cfg);
  expect_identical(transient, with_pool, 4);
  // And a reused pool keeps giving the same answer (no state leaks).
  expect_identical(transient, run_search(problem, cfg, &pool), 4);
}

TEST(SearchParallel, SequentialFallbacksReportZeroThreads) {
  const ProblemBuilder b = random_problem(7, 6, 64);
  const SearchProblem problem = b.build();
  SearchConfig cfg;
  cfg.threads = 4;
  cfg.node_limit = 100;

  cfg.algo = SearchAlgo::Dfs;  // the DFS baseline stays sequential
  EXPECT_EQ(run_search(problem, cfg).threads_used, 0u);

  cfg.algo = SearchAlgo::Dds;
  cfg.prune = true;  // cross-subtree incumbent pruning is order-dependent
  EXPECT_EQ(run_search(problem, cfg).threads_used, 0u);

  cfg.prune = false;
  cfg.on_path = [](std::span<const std::size_t>, const ObjectiveValue&) {};
  EXPECT_EQ(run_search(problem, cfg).threads_used, 0u);
}

TEST(SearchParallel, SingleJobProblemFallsBackSequential) {
  ProblemBuilder b(32, 0);
  b.wait(0, 8, kHour);
  SearchConfig cfg;
  cfg.threads = 8;
  const SearchResult r = run_search(b.build(), cfg);
  EXPECT_EQ(r.threads_used, 0u);
  EXPECT_EQ(r.nodes_visited, 1u);
  EXPECT_TRUE(r.exhausted);
}

/// The budget cut can land exactly on a subtree boundary or one node into
/// a task; sweep every budget around the full tree size to pin the edge
/// cases (iteration counted but zero paths, cut on the last root task...).
TEST(SearchParallel, EveryBudgetCutPointMatchesSequential) {
  const ProblemBuilder b = random_problem(99, 3, 64);  // 6 jobs with twins
  const SearchProblem problem = b.build();
  for (const SearchAlgo algo : {SearchAlgo::Lds, SearchAlgo::Dds}) {
    SearchConfig cfg;
    cfg.algo = algo;
    cfg.branching = Branching::Lxf;
    cfg.node_limit = 10000;
    const SearchResult full = run_search(problem, cfg);
    ASSERT_TRUE(full.exhausted);
    for (std::size_t budget = 1; budget <= full.nodes_visited + 1; ++budget) {
      cfg.node_limit = budget;
      const SearchResult seq = run_search(problem, cfg);
      SearchConfig par_cfg = cfg;
      for (const std::size_t threads : {2u, 5u}) {
        par_cfg.threads = threads;
        SCOPED_TRACE("algo=" + algo_name(algo) +
                     " budget=" + std::to_string(budget));
        expect_identical(seq, run_search(problem, par_cfg), threads);
      }
    }
  }
}

/// Scheduler-level differential: the started-job set of every decision in
/// a simulated run must be independent of the thread count.
TEST(SearchParallel, SchedulerStartsIdenticalJobsAcrossThreadCounts) {
  std::vector<Job> jobs;
  Rng rng(2025);
  Time t = 0;
  for (int i = 0; i < 60; ++i) {
    t += static_cast<Time>(rng.uniform_int(0, 1800));
    const int nodes = static_cast<int>(rng.uniform_int(1, 100));
    const Time runtime = static_cast<Time>(rng.uniform_int(kMinute, 6 * kHour));
    jobs.push_back(test::job(i, t, nodes, runtime));
    if (rng.bernoulli(0.25))
      jobs.push_back(test::job(i + 1000, t, nodes, runtime));
  }
  const Trace trace = test::trace_of(std::move(jobs), 100);

  auto outcomes_with_threads = [&](std::size_t threads) {
    auto policy = make_policy("DDS/lxf/dynB", /*node_limit=*/300,
                              /*deadline_ms=*/-1.0, threads);
    const SimResult r = simulate(trace, *policy);
    std::vector<std::pair<Time, Time>> spans;
    for (const JobOutcome& o : r.outcomes) spans.emplace_back(o.start, o.end);
    return spans;
  };

  const auto base = outcomes_with_threads(0);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(base, outcomes_with_threads(threads));
  }
}

}  // namespace
}  // namespace sbs
