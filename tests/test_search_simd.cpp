// The hot-path rebuild's proof layer, in three parts.
//
// 1. Kernel properties: every vector kernel in core/scan_kernels.hpp
//    (find-first scans, range min/sub/add) returns bit-identical answers
//    to its always-compiled *_scalar reference, on random arrays and on a
//    deterministic sweep that walks the match position across every
//    8-lane vector and 32-element block boundary.
//
// 2. The differential matrix: simd x scalar x cache on/off x dominance
//    on/off x threads {0,1,4} x a budget cut-point sweep. Within a cell
//    (dominance fixed — pruning legitimately changes the tree) every
//    configuration must produce the identical schedule, objective,
//    anytime profile and node accounting as the all-scalar naive
//    reference. This is the contract that lets `--search-simd=off
//    --search-prune=off --search-cache off` serve as a production escape
//    hatch: the knobs change throughput, never results.
//
// 3. The arena layer: unit tests for the bump Arena's epoch discipline
//    and ArenaVector against a std::vector model, plus the arena-stress
//    test — ten thousand scheduling decisions through run_search() with
//    an RSS plateau asserted (steady-state search performs no per-
//    decision heap growth; the thread's arena stops allocating once
//    warm).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "core/scan_kernels.hpp"
#include "core/search.hpp"
#include "test_support.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::ProblemBuilder;

// ---------------------------------------------------------------------------
// Part 1: kernel properties.

TEST(ScanKernels, MatchScalarReferencesOnRandomArrays) {
  Rng rng(0x51AD);
  for (int iter = 0; iter < 500; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    // Sizes straddle the vector width and block size; values are drawn
    // from a small range so thresholds produce long plateaus (the worst
    // case for a scan that takes a wrong early exit).
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 200));
    std::vector<int> v(n);
    for (int& x : v) x = static_cast<int>(rng.uniform_int(0, 12));
    const std::size_t lo = n > 0 ? static_cast<std::size_t>(
                                       rng.uniform_int(0, static_cast<int>(n)))
                                 : 0;
    const std::size_t hi = lo + static_cast<std::size_t>(rng.uniform_int(
                                    0, static_cast<int>(n - lo)));
    const int x = static_cast<int>(rng.uniform_int(0, 13));

    EXPECT_EQ(kernels::first_lt(v.data(), lo, hi, x),
              kernels::first_lt_scalar(v.data(), lo, hi, x));
    EXPECT_EQ(kernels::first_ge(v.data(), lo, hi, x),
              kernels::first_ge_scalar(v.data(), lo, hi, x));
    EXPECT_EQ(kernels::range_min(v.data(), lo, hi),
              kernels::range_min_scalar(v.data(), lo, hi));

    std::vector<int> a = v;
    std::vector<int> b = v;
    kernels::range_sub(a.data(), lo, hi, x);
    kernels::range_sub_scalar(b.data(), lo, hi, x);
    EXPECT_EQ(a, b);
    kernels::range_add(a.data(), lo, hi, x);
    kernels::range_add_scalar(b.data(), lo, hi, x);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, v);  // add undoes sub exactly
  }
}

TEST(ScanKernels, FindFirstSweepsEveryLaneAndBlockBoundary) {
  // A single match planted at every position of a 100-element array: the
  // scans must report exactly that position wherever it falls relative to
  // the 8-lane vectors and the 32-element blocks, including the tails.
  constexpr std::size_t kN = 100;
  for (std::size_t k = 0; k < kN; ++k) {
    std::vector<int> v(kN, 10);
    v[k] = 1;
    EXPECT_EQ(kernels::first_lt(v.data(), 0, kN, 5), k) << "match at " << k;
    EXPECT_EQ(kernels::range_min(v.data(), 0, kN), 1);
    for (int& x : v) x = 1;
    v[k] = 10;
    EXPECT_EQ(kernels::first_ge(v.data(), 0, kN, 5), k) << "match at " << k;
  }
  // Empty and no-match ranges return hi.
  std::vector<int> v(kN, 3);
  EXPECT_EQ(kernels::first_lt(v.data(), 7, 7, 5), 7u);
  EXPECT_EQ(kernels::first_ge(v.data(), 0, kN, 5), kN);
  EXPECT_EQ(kernels::range_min(v.data(), 9, 9),
            std::numeric_limits<int>::max());
}

// ---------------------------------------------------------------------------
// Part 2: the differential matrix.

/// Same random decision-point recipe as the incremental differential
/// suite: mixed widths/lengths, tie twins for the memo and the twin-skip
/// cut, a partially busy machine, tight and loose bounds.
ProblemBuilder random_problem(std::uint64_t seed, std::size_t jobs,
                              int capacity, bool tight_bounds) {
  Rng rng(seed);
  ProblemBuilder b(capacity, /*now=*/static_cast<Time>(36000));
  b.busy(static_cast<int>(rng.uniform_int(0, capacity / 2)),
         static_cast<Time>(rng.uniform_int(60, 4 * kHour)));
  for (std::size_t i = 0; i < jobs; ++i) {
    const Time submit = static_cast<Time>(rng.uniform_int(0, 36000));
    const int nodes = static_cast<int>(rng.uniform_int(1, capacity));
    const Time runtime = static_cast<Time>(rng.uniform_int(kMinute, 8 * kHour));
    const Time bound = tight_bounds
                           ? static_cast<Time>(rng.uniform_int(1, 4) * kHour)
                           : static_cast<Time>(rng.uniform_int(20, 60) * kHour);
    b.wait(submit, nodes, runtime, bound);
    if (rng.bernoulli(0.4)) b.wait(submit, nodes, runtime, bound);  // twin
  }
  return b;
}

void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.starts, b.starts);
  EXPECT_EQ(a.value.excess_h, b.value.excess_h);
  EXPECT_EQ(a.value.avg_bsld, b.value.avg_bsld);
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.paths_completed, b.paths_completed);
  EXPECT_EQ(a.iterations_started, b.iterations_started);
  EXPECT_EQ(a.paths_per_iteration, b.paths_per_iteration);
  EXPECT_EQ(a.exhausted, b.exhausted);
  ASSERT_EQ(a.improvements.size(), b.improvements.size());
  for (std::size_t i = 0; i < a.improvements.size(); ++i) {
    SCOPED_TRACE("improvement " + std::to_string(i));
    EXPECT_EQ(a.improvements[i].nodes, b.improvements[i].nodes);
    EXPECT_EQ(a.improvements[i].path, b.improvements[i].path);
    EXPECT_EQ(a.improvements[i].value.excess_h,
              b.improvements[i].value.excess_h);
    EXPECT_EQ(a.improvements[i].value.avg_bsld,
              b.improvements[i].value.avg_bsld);
    EXPECT_EQ(a.improvements[i].discrepancies, b.improvements[i].discrepancies);
  }
}

class SearchSimdMatrix
    : public ::testing::TestWithParam<std::tuple<SearchAlgo, Branching>> {};

TEST_P(SearchSimdMatrix, EveryKnobCellMatchesTheAllScalarReference) {
  const auto [algo, branching] = GetParam();
  // Budgets land the cut at the heuristic path, mid-iteration, a whole
  // iteration, and exhaustion — every cut point must be knob-invariant.
  const std::size_t kBudgets[] = {1, 7, 60, 400, 100000};
  struct Cell {
    bool cache;
    bool simd;
    std::size_t threads;
  };
  // cache=off ignores `simd` by design — the (false, true) cell pins
  // exactly that inertness.
  const Cell kCells[] = {{false, true, 0}, {true, false, 0}, {true, true, 0},
                         {true, true, 1},  {true, true, 4},  {true, false, 4}};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const std::size_t jobs : {std::size_t{5}, std::size_t{9}}) {
      for (const bool dominance : {false, true}) {
        const ProblemBuilder b = random_problem(seed * 2371, jobs,
                                                /*capacity=*/64,
                                                /*tight_bounds=*/seed % 2 == 0);
        const SearchProblem problem = b.build();
        for (const std::size_t budget : kBudgets) {
          SCOPED_TRACE("seed=" + std::to_string(seed) +
                       " jobs=" + std::to_string(jobs) +
                       " dominance=" + std::to_string(dominance) +
                       " budget=" + std::to_string(budget));
          SearchConfig ref_cfg;
          ref_cfg.algo = algo;
          ref_cfg.branching = branching;
          ref_cfg.node_limit = budget;
          ref_cfg.cache = false;
          ref_cfg.simd = false;
          ref_cfg.dominance = dominance;
          const SearchResult ref = run_search(problem, ref_cfg);
          if (!dominance) {
            EXPECT_EQ(ref.pruned_twins, 0u);
            EXPECT_EQ(ref.pruned_bound, 0u);
          }
          for (const Cell& cell : kCells) {
            SCOPED_TRACE("cache=" + std::to_string(cell.cache) +
                         " simd=" + std::to_string(cell.simd) +
                         " threads=" + std::to_string(cell.threads));
            SearchConfig cfg = ref_cfg;
            cfg.cache = cell.cache;
            cfg.simd = cell.simd;
            cfg.threads = cell.threads;
            expect_identical(ref, run_search(problem, cfg));
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgoBranching, SearchSimdMatrix,
    ::testing::Values(std::make_tuple(SearchAlgo::Lds, Branching::Fcfs),
                      std::make_tuple(SearchAlgo::Dds, Branching::Lxf),
                      std::make_tuple(SearchAlgo::Dfs, Branching::Lxf)));

// ---------------------------------------------------------------------------
// Part 3: the arena layer.

TEST(Arena, EpochDisciplineResetsOnceAndRetainsBlocks) {
  Arena arena(/*first_block_bytes=*/128);
  arena.begin_epoch(1);
  int* a = arena.alloc_array<int>(100);  // outgrows the first block
  for (int i = 0; i < 100; ++i) a[i] = i;
  const std::size_t cap = arena.capacity_bytes();
  const std::size_t blocks = arena.block_count();
  EXPECT_GE(cap, 100 * sizeof(int));
  EXPECT_GT(arena.epoch_bytes(), 0u);

  // Re-claiming the same epoch is a no-op: the allocation must survive.
  arena.begin_epoch(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], i);

  // A new epoch frees everything at once but retains the blocks; an
  // identical allocation pattern adds no capacity.
  arena.begin_epoch(2);
  EXPECT_EQ(arena.epoch_bytes(), 0u);
  arena.alloc_array<int>(100);
  EXPECT_EQ(arena.capacity_bytes(), cap);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(Arena, AlignmentIsRespected) {
  Arena arena(/*first_block_bytes=*/64);
  arena.allocate(1, 1);
  void* p = arena.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
  void* q = arena.allocate(16, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) %
                alignof(std::max_align_t),
            0u);
}

TEST(ArenaVector, MatchesStdVectorUnderRandomOperations) {
  Rng rng(0xA7E4A);
  for (int iter = 0; iter < 50; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    Arena arena;
    ArenaVector<int> av;
    av.init(arena, 64);
    std::vector<int> model;
    for (int op = 0; op < 300; ++op) {
      switch (rng.uniform_int(0, 5)) {
        case 0:
        case 1:
          if (model.size() < 64) {
            const int v = static_cast<int>(rng.uniform_int(0, 1000));
            av.push_back(v);
            model.push_back(v);
          }
          break;
        case 2:
          if (!model.empty()) {
            av.pop_back();
            model.pop_back();
          }
          break;
        case 3:
          if (model.size() < 64) {
            const auto at = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(model.size())));
            const int v = static_cast<int>(rng.uniform_int(0, 1000));
            av.insert_at(at, v);
            model.insert(model.begin() + static_cast<std::ptrdiff_t>(at), v);
          }
          break;
        case 4:
          if (!model.empty()) {
            const auto at = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(model.size()) - 1));
            av.erase_at(at);
            model.erase(model.begin() + static_cast<std::ptrdiff_t>(at));
          }
          break;
        default: {
          const auto n = static_cast<std::size_t>(rng.uniform_int(0, 64));
          av.resize(n);
          model.resize(n, 0);
          break;
        }
      }
      ASSERT_EQ(av.size(), model.size());
      for (std::size_t i = 0; i < model.size(); ++i)
        ASSERT_EQ(av[i], model[i]) << "index " << i;
    }
  }
}

/// VmRSS in kilobytes from /proc/self/status; 0 where unavailable.
std::size_t vm_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = static_cast<std::size_t>(std::atol(line + 6));
      break;
    }
  }
  std::fclose(f);
  return kb;
}

TEST(ArenaStress, TenThousandDecisionsReachAnRssPlateau) {
  // Steady-state search must not grow the process: the arena retains its
  // blocks across epochs and the memo its table, so after a warm-up
  // window, ten thousand further decisions through the default engine
  // (cache + simd + dominance) add no retained memory. Asserted two ways:
  // the thread arena's retained capacity is bit-stable, and VmRSS growth
  // past warm-up stays under a small allowance (the allowance absorbs
  // allocator noise, not a leak — a per-decision leak of even 100 bytes
  // would blow through it hundreds of times over).
  constexpr int kWarmup = 500;
  constexpr int kDecisions = 10000;
  // Three rotating decision points so the epochs see different shapes.
  std::vector<ProblemBuilder> builders;
  builders.push_back(random_problem(0xDECAF, 8, 64, false));
  builders.push_back(random_problem(0xFADED, 12, 96, true));
  builders.push_back(random_problem(0xB0BA, 5, 32, false));
  std::vector<SearchProblem> problems;
  problems.reserve(builders.size());
  for (const auto& b : builders) problems.push_back(b.build());

  SearchConfig cfg;
  cfg.node_limit = 200;

  for (int i = 0; i < kWarmup; ++i)
    run_search(problems[static_cast<std::size_t>(i) % problems.size()], cfg);
  const std::size_t rss_before = vm_rss_kb();
  const std::size_t arena_before = worker_arena().capacity_bytes();
  ASSERT_GT(arena_before, 0u);

  for (int i = 0; i < kDecisions; ++i)
    run_search(problems[static_cast<std::size_t>(i) % problems.size()], cfg);

  EXPECT_EQ(worker_arena().capacity_bytes(), arena_before)
      << "the thread arena grew after warm-up";
  if (rss_before > 0) {
    const std::size_t rss_after = vm_rss_kb();
    EXPECT_LE(rss_after, rss_before + 4096)
        << "RSS grew by " << (rss_after - rss_before)
        << " kB over " << kDecisions << " post-warm-up decisions";
  }
}

}  // namespace
}  // namespace sbs
