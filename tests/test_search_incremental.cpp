// Differential proof of the incremental search engine: across a seeded
// matrix of workloads x {LDS,DDS,DFS} x {fcfs,lxf} x bound mix x node
// budgets x threads, the cached engine (single undo-log profile + per-node
// earliest-start memo, SearchConfig::cache) must produce results IDENTICAL
// to the naive per-depth-snapshot engine — schedule, objective, anytime
// profile and node accounting, bit for bit. The undo-log substrate gets
// its own stress layer (random reserve/undo walks checked step-for-step
// against rebuilt reference profiles), and the cross-event warm start is
// pinned to its contract: never worse than cold under the same budget,
// exactly equal when the search exhausts the tree, and thread-count
// invariant.

#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <tuple>
#include <vector>

#include "cluster/resource_profile.hpp"
#include "core/schedule_builder.hpp"
#include "core/search.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::ProblemBuilder;

/// Seeded random decision point (same recipe as the parallel differential
/// suite): mixed widths and lengths, slowdown ties from twin submissions,
/// a partially busy machine, and a bound mix of tight and loose targets so
/// both objective levels are exercised.
ProblemBuilder random_problem(std::uint64_t seed, std::size_t jobs,
                              int capacity, bool tight_bounds) {
  Rng rng(seed);
  ProblemBuilder b(capacity, /*now=*/static_cast<Time>(36000));
  b.busy(static_cast<int>(rng.uniform_int(0, capacity / 2)),
         static_cast<Time>(rng.uniform_int(60, 4 * kHour)));
  for (std::size_t i = 0; i < jobs; ++i) {
    const Time submit = static_cast<Time>(rng.uniform_int(0, 36000));
    const int nodes = static_cast<int>(rng.uniform_int(1, capacity));
    const Time runtime = static_cast<Time>(rng.uniform_int(kMinute, 8 * kHour));
    // Tight bounds put paths over the excess-wait level (level-1 activity);
    // loose bounds leave everything to the slowdown level.
    const Time bound = tight_bounds
                           ? static_cast<Time>(rng.uniform_int(1, 4) * kHour)
                           : static_cast<Time>(rng.uniform_int(20, 60) * kHour);
    b.wait(submit, nodes, runtime, bound);
    if (rng.bernoulli(0.3)) b.wait(submit, nodes, runtime, bound);  // tie twin
  }
  return b;
}

/// Full bit-identity check between two search results. `check_counters`
/// additionally requires hit/miss accounting to add up (sequential cached
/// runs only — parallel workers speculate, so their counters are not
/// canonical).
void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.starts, b.starts);
  EXPECT_EQ(a.value.excess_h, b.value.excess_h);
  EXPECT_EQ(a.value.avg_bsld, b.value.avg_bsld);
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.paths_completed, b.paths_completed);
  EXPECT_EQ(a.iterations_started, b.iterations_started);
  EXPECT_EQ(a.paths_per_iteration, b.paths_per_iteration);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.warm_start_used, b.warm_start_used);
  ASSERT_EQ(a.improvements.size(), b.improvements.size());
  for (std::size_t i = 0; i < a.improvements.size(); ++i) {
    SCOPED_TRACE("improvement " + std::to_string(i));
    EXPECT_EQ(a.improvements[i].nodes, b.improvements[i].nodes);
    EXPECT_EQ(a.improvements[i].path, b.improvements[i].path);
    EXPECT_EQ(a.improvements[i].value.excess_h,
              b.improvements[i].value.excess_h);
    EXPECT_EQ(a.improvements[i].value.avg_bsld,
              b.improvements[i].value.avg_bsld);
    EXPECT_EQ(a.improvements[i].discrepancies, b.improvements[i].discrepancies);
  }
}

// ---------------------------------------------------------------------------
// Differential matrix: cache on/off x threads, against the naive engine.

class SearchIncrementalMatrix
    : public ::testing::TestWithParam<std::tuple<SearchAlgo, Branching, bool>> {
};

TEST_P(SearchIncrementalMatrix, CachedEngineMatchesNaiveAcrossThreadCounts) {
  const auto [algo, branching, tight_bounds] = GetParam();
  const std::size_t kJobs[] = {2, 5, 9};
  const std::size_t kBudgets[] = {1, 7, 60, 400, 100000};
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const std::size_t jobs : kJobs) {
      for (const std::size_t budget : kBudgets) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " jobs=" + std::to_string(jobs) +
                     " budget=" + std::to_string(budget));
        const ProblemBuilder b =
            random_problem(seed * 1009, jobs, /*capacity=*/64, tight_bounds);
        const SearchProblem problem = b.build();
        SearchConfig naive_cfg;
        naive_cfg.algo = algo;
        naive_cfg.branching = branching;
        naive_cfg.node_limit = budget;
        naive_cfg.cache = false;
        const SearchResult naive = run_search(problem, naive_cfg);
        // The naive builder never touches the memo.
        EXPECT_EQ(naive.cache_hits, 0u);
        EXPECT_EQ(naive.cache_misses, 0u);

        for (const std::size_t threads : {0u, 1u, 4u}) {
          SCOPED_TRACE("threads=" + std::to_string(threads));
          SearchConfig cached_cfg = naive_cfg;
          cached_cfg.cache = true;
          cached_cfg.threads = threads;
          const SearchResult cached = run_search(problem, cached_cfg);
          expect_identical(naive, cached);
          if (cached.threads_used == 0) {
            // Sequential cached run: every placement is answered by exactly
            // one memo hit or one miss.
            EXPECT_EQ(cached.cache_hits + cached.cache_misses,
                      cached.nodes_visited);
          } else {
            EXPECT_GE(cached.cache_hits + cached.cache_misses,
                      cached.nodes_visited);
          }
          // Naive mode must also be thread-count invariant.
          SearchConfig naive_par = naive_cfg;
          naive_par.threads = threads;
          expect_identical(naive, run_search(problem, naive_par));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgoBranchingBound, SearchIncrementalMatrix,
    ::testing::Combine(::testing::Values(SearchAlgo::Lds, SearchAlgo::Dds,
                                         SearchAlgo::Dfs),
                       ::testing::Values(Branching::Fcfs, Branching::Lxf),
                       ::testing::Bool()),
    [](const auto& param_info) {
      return algo_name(std::get<0>(param_info.param)) + "_" +
             branching_name(std::get<1>(param_info.param)) +
             (std::get<2>(param_info.param) ? "_tight" : "_loose");
    });

// Every budget cut point: on a tree small enough to enumerate, run the
// cached and naive engines at EVERY node limit from 1 to past exhaustion.
// This sweeps the truncation boundary through every placement, so a cache
// bug that shifts behavior at any single node is caught.
TEST(SearchIncremental, EveryBudgetCutPointIsIdentical) {
  const ProblemBuilder b =
      random_problem(/*seed=*/4242, /*jobs=*/5, /*capacity=*/16, true);
  const SearchProblem problem = b.build();
  for (const SearchAlgo algo : {SearchAlgo::Lds, SearchAlgo::Dds}) {
    SearchConfig probe;
    probe.algo = algo;
    probe.node_limit = 1'000'000;
    probe.cache = false;
    const std::size_t total = run_search(problem, probe).nodes_visited;
    ASSERT_GT(total, 100u);  // the sweep must actually cover a real tree
    for (std::size_t budget = 1; budget <= total + 2; ++budget) {
      SCOPED_TRACE(algo_name(algo) + " budget=" + std::to_string(budget));
      SearchConfig cfg = probe;
      cfg.node_limit = budget;
      const SearchResult naive = run_search(problem, cfg);
      cfg.cache = true;
      expect_identical(naive, run_search(problem, cfg));
    }
  }
}

// The on_path hook sees every completed path in exploration order; the
// cached engine must deliver the exact same sequence of (order, value)
// pairs, not just the same incumbent.
TEST(SearchIncremental, OnPathSequenceIsIdentical) {
  const ProblemBuilder b =
      random_problem(/*seed=*/77, /*jobs=*/6, /*capacity=*/32, false);
  const SearchProblem problem = b.build();
  for (const SearchAlgo algo :
       {SearchAlgo::Lds, SearchAlgo::Dds, SearchAlgo::Dfs}) {
    SCOPED_TRACE(algo_name(algo));
    struct Seen {
      std::vector<std::vector<std::size_t>> orders;
      std::vector<ObjectiveValue> values;
    };
    Seen naive_seen, cached_seen;
    const auto run_with = [&](bool cache, Seen& seen) {
      SearchConfig cfg;
      cfg.algo = algo;
      cfg.node_limit = 500;
      cfg.cache = cache;
      cfg.on_path = [&seen](std::span<const std::size_t> path,
                            const ObjectiveValue& value) {
        seen.orders.emplace_back(path.begin(), path.end());
        seen.values.push_back(value);
      };
      return run_search(problem, cfg);
    };
    expect_identical(run_with(false, naive_seen), run_with(true, cached_seen));
    ASSERT_EQ(naive_seen.orders.size(), cached_seen.orders.size());
    for (std::size_t i = 0; i < naive_seen.orders.size(); ++i) {
      EXPECT_EQ(naive_seen.orders[i], cached_seen.orders[i]);
      EXPECT_EQ(naive_seen.values[i].excess_h, cached_seen.values[i].excess_h);
      EXPECT_EQ(naive_seen.values[i].avg_bsld, cached_seen.values[i].avg_bsld);
    }
  }
}

// Branch-and-bound pruning with the cached builder: the pruned search must
// agree with its naive twin on everything, including the node count the
// pruning produces.
TEST(SearchIncremental, PruningIsIdenticalUnderCache) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ProblemBuilder b =
        random_problem(seed * 31, /*jobs=*/6, /*capacity=*/32, true);
    const SearchProblem problem = b.build();
    for (const SearchAlgo algo :
         {SearchAlgo::Lds, SearchAlgo::Dds, SearchAlgo::Dfs}) {
      SearchConfig cfg;
      cfg.algo = algo;
      cfg.node_limit = 2000;
      cfg.prune = true;
      cfg.cache = false;
      const SearchResult naive = run_search(problem, cfg);
      cfg.cache = true;
      expect_identical(naive, run_search(problem, cfg));
    }
  }
}

// ---------------------------------------------------------------------------
// Undo-log substrate: reserve_logged/undo against rebuilt references.

void expect_same_steps(const ResourceProfile& got, const ResourceProfile& want,
                       const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(got.step_count(), want.step_count());
  for (std::size_t i = 0; i < got.steps().size(); ++i) {
    EXPECT_EQ(got.steps()[i].time, want.steps()[i].time) << "step " << i;
    EXPECT_EQ(got.steps()[i].free, want.steps()[i].free) << "step " << i;
  }
}

/// One pending reservation of the stress walk, kept so the reference
/// profile can be rebuilt from scratch with plain reserve().
struct PendingReservation {
  Time start;
  int nodes;
  Time duration;
  ResourceProfile::ReserveUndo undo;
};

// Random LIFO walk: push reservations at earliest feasible starts, pop
// some of them back, and after EVERY operation compare the step vector
// against a reference profile rebuilt from the outstanding set. This is
// the exactness claim the whole engine rests on: undo restores the profile
// byte-for-byte, not merely equivalently.
TEST(ReserveUndo, RandomWalkMatchesRebuiltReferenceExactly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 131);
    const int capacity = 32;
    const Time origin = 1000;
    ResourceProfile live(capacity, origin);
    std::vector<PendingReservation> stack;

    const auto reference = [&] {
      ResourceProfile ref(capacity, origin);
      for (const PendingReservation& r : stack)
        ref.reserve(r.start, r.nodes, r.duration);
      return ref;
    };

    for (int op = 0; op < 300; ++op) {
      const bool push = stack.empty() || rng.bernoulli(0.6);
      if (push) {
        const int nodes = static_cast<int>(rng.uniform_int(1, capacity));
        const Time duration = static_cast<Time>(rng.uniform_int(1, 5000));
        const Time from =
            origin + static_cast<Time>(rng.uniform_int(0, 20000));
        const Time start = live.earliest_start(from, nodes, duration);
        PendingReservation r;
        r.start = start;
        r.nodes = nodes;
        r.duration = duration;
        r.undo = live.reserve_logged(start, nodes, duration);
        stack.push_back(r);
      } else {
        live.undo(stack.back().undo);
        stack.pop_back();
      }
      expect_same_steps(live, reference(), "op " + std::to_string(op));
    }

    // Full unwind restores the pristine profile.
    while (!stack.empty()) {
      live.undo(stack.back().undo);
      stack.pop_back();
    }
    expect_same_steps(live, ResourceProfile(capacity, origin), "unwound");
  }
}

// reserve_logged must mutate exactly as reserve does (same step vector),
// and its undo must restore the previous vector at every depth of a full
// place-then-unwind pass — the "backtracks through every depth" case.
TEST(ReserveUndo, UndoRestoresEveryDepthOfAFullDescent) {
  Rng rng(2026);
  const int capacity = 24;
  ResourceProfile live(capacity, 0);
  std::vector<ResourceProfile::ReserveUndo> undos;
  std::vector<std::vector<ResourceProfile::Step>> snapshots;  // pre-reserve

  for (int depth = 0; depth < 40; ++depth) {
    snapshots.push_back(live.steps());
    const int nodes = static_cast<int>(rng.uniform_int(1, capacity));
    const Time duration = static_cast<Time>(rng.uniform_int(60, 7200));
    const Time start = live.earliest_start(
        static_cast<Time>(rng.uniform_int(0, 10000)), nodes, duration);

    // Twin profile through plain reserve(): identical mutation.
    ResourceProfile twin = live;
    twin.reserve(start, nodes, duration);
    undos.push_back(live.reserve_logged(start, nodes, duration));
    expect_same_steps(live, twin, "depth " + std::to_string(depth));
  }

  for (int depth = 39; depth >= 0; --depth) {
    live.undo(undos.back());
    undos.pop_back();
    const auto& want = snapshots[static_cast<std::size_t>(depth)];
    ASSERT_EQ(live.steps().size(), want.size()) << "depth " << depth;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(live.steps()[i].time, want[i].time);
      EXPECT_EQ(live.steps()[i].free, want[i].free);
    }
  }
}

// ---------------------------------------------------------------------------
// ScheduleBuilder: cached vs naive on random place/unplace walks.

TEST(ScheduleBuilderIncremental, RandomWalkMatchesNaiveBuilder) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ProblemBuilder b =
        random_problem(seed * 17, /*jobs=*/7, /*capacity=*/32, false);
    const SearchProblem problem = b.build();
    const std::size_t n = problem.size();
    ScheduleBuilder cached(problem, /*cache=*/true);
    ScheduleBuilder naive(problem, /*cache=*/false);

    Rng rng(seed * 911);
    std::vector<std::size_t> path;  // jobs currently placed, bottom-up
    std::vector<char> used(n, 0);
    std::size_t placements = 0;
    for (int op = 0; op < 400; ++op) {
      const bool descend =
          path.empty() || (path.size() < n && rng.bernoulli(0.55));
      if (descend) {
        std::size_t job = rng.uniform_int(0, n - 1);
        while (used[job]) job = (job + 1) % n;
        const std::size_t depth = path.size();
        EXPECT_EQ(cached.place(depth, job), naive.place(depth, job))
            << "op " << op;
        used[job] = 1;
        path.push_back(job);
        ++placements;
      } else {
        used[path.back()] = 0;
        path.pop_back();
        cached.unplace();
        naive.unplace();  // no-op by contract
      }
      EXPECT_EQ(cached.depth(), path.size());
      // The cached builder's live SoA profile must equal the naive
      // builder's snapshot at the current depth, step for step.
      const auto live = cached.live_steps();
      const auto want = naive.live_steps(path.size());
      ASSERT_EQ(live.size(), want.size()) << "op " << op;
      for (std::size_t i = 0; i < live.size(); ++i) {
        ASSERT_EQ(live[i].time, want[i].time) << "op " << op << " step " << i;
        ASSERT_EQ(live[i].free, want[i].free) << "op " << op << " step " << i;
      }
    }
    // Replays hit the memo: a walk this long revisits (version, job) pairs,
    // and every placement is answered by exactly one hit or one miss.
    EXPECT_GT(cached.cache_stats().hits, 0u);
    EXPECT_EQ(cached.cache_stats().hits + cached.cache_stats().misses,
              placements);
  }
}

TEST(ScheduleBuilderIncremental, RewindRestoresTheBaseProfile) {
  const ProblemBuilder b =
      random_problem(/*seed=*/5, /*jobs=*/6, /*capacity=*/16, false);
  const SearchProblem problem = b.build();
  ScheduleBuilder builder(problem, /*cache=*/true);
  for (std::size_t d = 0; d < problem.size(); ++d) builder.place(d, d);
  EXPECT_EQ(builder.depth(), problem.size());
  builder.rewind();
  EXPECT_EQ(builder.depth(), 0u);
  const auto live = builder.live_steps();
  const auto& want = problem.base.steps();
  ASSERT_EQ(live.size(), want.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].time, want[i].time) << "step " << i;
    EXPECT_EQ(live[i].free, want[i].free) << "step " << i;
  }

  // After a rewind the builder replays identically, entirely from memo.
  const std::uint64_t misses_before = builder.cache_stats().misses;
  ScheduleBuilder fresh(problem, /*cache=*/false);
  for (std::size_t d = 0; d < problem.size(); ++d)
    EXPECT_EQ(builder.place(d, d), fresh.place(d, d));
  EXPECT_EQ(builder.cache_stats().misses, misses_before);
  builder.rewind();
}

// ---------------------------------------------------------------------------
// Cross-event warm start.

TEST(WarmStart, ExhaustedSearchIsIdenticalToCold) {
  const ProblemBuilder b =
      random_problem(/*seed=*/11, /*jobs=*/5, /*capacity=*/32, true);
  const SearchProblem problem = b.build();
  SearchConfig cfg;
  cfg.node_limit = 1'000'000;  // exhausts the 5-job tree
  const SearchResult cold = run_search(problem, cfg);
  ASSERT_TRUE(cold.exhausted);

  // Warm-start with the heuristic order (a plausible previous-event path).
  const std::vector<std::size_t> warm_order =
      branching_order(problem, cfg.branching);
  SearchConfig warm_cfg = cfg;
  warm_cfg.warm_order = &warm_order;
  const SearchResult warm = run_search(problem, warm_cfg);
  EXPECT_TRUE(warm.warm_start_used);
  EXPECT_FALSE(cold.warm_start_used);

  // An exhausted search finds the global optimum regardless of the seed.
  EXPECT_EQ(cold.value.excess_h, warm.value.excess_h);
  EXPECT_EQ(cold.value.avg_bsld, warm.value.avg_bsld);
  EXPECT_EQ(cold.order, warm.order);
  EXPECT_EQ(cold.starts, warm.starts);
  EXPECT_EQ(cold.nodes_visited, warm.nodes_visited);
}

TEST(WarmStart, NeverWorseThanColdUnderTruncatedBudgets) {
  ObjectiveComparator cmp;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ProblemBuilder b =
        random_problem(seed * 503, /*jobs=*/9, /*capacity=*/64, true);
    const SearchProblem problem = b.build();
    for (const std::size_t budget : {1u, 5u, 40u, 300u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " budget=" + std::to_string(budget));
      SearchConfig cfg;
      cfg.node_limit = budget;
      // Exploration-unchanged accounting below (equal nodes/paths) holds
      // only without incumbent-dependent cuts: the warm seed changes the
      // frozen dominance bound from iteration 1 on, legitimately changing
      // node counts. The dominance-on warm contract (still never worse) is
      // covered by tests/test_fuzz_invariants.cpp.
      cfg.dominance = false;
      const SearchResult cold = run_search(problem, cfg);

      // Use the cold search's best order as the carried path — exactly what
      // the scheduler hands the next event when the queue did not change.
      SearchConfig warm_cfg = cfg;
      warm_cfg.warm_order = &cold.order;
      const SearchResult warm = run_search(problem, warm_cfg);
      EXPECT_TRUE(warm.warm_start_used);
      // Anytime contract: the warm result is at least as good as both the
      // cold result and the seed itself.
      EXPECT_FALSE(cmp.less(cold.value, warm.value));
      // The seed costs no nodes: exploration is unchanged (prune is off).
      EXPECT_EQ(cold.nodes_visited, warm.nodes_visited);
      EXPECT_EQ(cold.paths_completed, warm.paths_completed);
      // The warm incumbent enters the anytime profile at node 0.
      ASSERT_FALSE(warm.improvements.empty());
      EXPECT_EQ(warm.improvements.front().nodes, 0u);
      EXPECT_EQ(warm.improvements.front().path, 0u);
    }
  }
}

TEST(WarmStart, InvalidOrdersFallBackToColdSilently) {
  const ProblemBuilder b =
      random_problem(/*seed=*/23, /*jobs=*/4, /*capacity=*/16, false);
  const SearchProblem problem = b.build();
  SearchConfig cfg;
  cfg.node_limit = 50;
  const SearchResult cold = run_search(problem, cfg);

  const std::vector<std::size_t> wrong_size = {0, 1, 2};
  const std::vector<std::size_t> duplicate = {0, 1, 1, 3};
  const std::vector<std::size_t> out_of_range = {0, 1, 2, 9};
  for (const auto* bad : {&wrong_size, &duplicate, &out_of_range}) {
    SearchConfig warm_cfg = cfg;
    warm_cfg.warm_order = bad;
    const SearchResult r = run_search(problem, warm_cfg);
    EXPECT_FALSE(r.warm_start_used);
    expect_identical(cold, r);
  }
}

TEST(WarmStart, ThreadCountInvariant) {
  const ProblemBuilder b =
      random_problem(/*seed=*/61, /*jobs=*/8, /*capacity=*/64, true);
  const SearchProblem problem = b.build();
  const std::vector<std::size_t> warm_order =
      branching_order(problem, Branching::Lxf);
  // Reverse it so the seed is NOT the iteration-0 path — the interesting
  // case, where the warm incumbent can survive several iterations.
  std::vector<std::size_t> reversed(warm_order.rbegin(), warm_order.rend());

  for (const std::size_t budget : {3u, 25u, 200u, 100000u}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    SearchConfig cfg;
    cfg.node_limit = budget;
    cfg.warm_order = &reversed;
    const SearchResult seq = run_search(problem, cfg);
    EXPECT_TRUE(seq.warm_start_used);
    for (const std::size_t threads : {1u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      SearchConfig par = cfg;
      par.threads = threads;
      expect_identical(seq, run_search(problem, par));
    }
    // And cache off agrees too.
    SearchConfig naive = cfg;
    naive.cache = false;
    expect_identical(seq, run_search(problem, naive));
  }
}

}  // namespace
}  // namespace sbs
