#include "core/fairshare.hpp"

#include <gtest/gtest.h>

#include "core/search_scheduler.hpp"
#include "metrics/users.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace sbs {
namespace {

using test::job;
using test::trace_of;

Job user_job(int id, Time submit, int nodes, Time runtime, int user) {
  Job j = job(id, submit, nodes, runtime);
  j.user = user;
  return j;
}

TEST(FairShare, FreshTrackerIsNeutral) {
  FairShareTracker t;
  EXPECT_DOUBLE_EQ(t.share_ratio(7, 0), 1.0);
  EXPECT_EQ(t.adjust_bound(10 * kHour, 7, 0), 10 * kHour);
  EXPECT_EQ(t.tracked_users(), 0u);
}

TEST(FairShare, ChargeAccumulatesNodeSeconds) {
  FairShareTracker t;
  t.charge(user_job(0, 0, 4, kHour, 1), kHour, 0);
  EXPECT_DOUBLE_EQ(t.usage(1, 0), 4.0 * kHour);
  t.charge(user_job(1, 0, 2, kHour, 1), kHour, 0);
  EXPECT_DOUBLE_EQ(t.usage(1, 0), 6.0 * kHour);
}

TEST(FairShare, UsageDecaysWithHalfLife) {
  FairShareConfig cfg;
  cfg.half_life = kDay;
  FairShareTracker t(cfg);
  t.charge(user_job(0, 0, 8, kHour, 1), kHour, 0);
  const double initial = t.usage(1, 0);
  EXPECT_NEAR(t.usage(1, kDay), initial / 2.0, 1e-6);
  EXPECT_NEAR(t.usage(1, 2 * kDay), initial / 4.0, 1e-6);
}

TEST(FairShare, ShareRatioComparesAgainstEqualShare) {
  FairShareTracker t;
  t.charge(user_job(0, 0, 6, kHour, 1), kHour, 0);  // user 1: 6 node-h
  t.charge(user_job(1, 0, 2, kHour, 2), kHour, 0);  // user 2: 2 node-h
  // Equal share = 4 node-h; user 1 at 1.5x, user 2 at 0.5x.
  EXPECT_NEAR(t.share_ratio(1, 0), 1.5, 1e-9);
  EXPECT_NEAR(t.share_ratio(2, 0), 0.5, 1e-9);
  // Unknown users consumed nothing -> ratio 0, clamped in adjust_bound.
  EXPECT_NEAR(t.share_ratio(9, 0), 0.0, 1e-9);
}

TEST(FairShare, AdjustBoundOnlyTightens) {
  FairShareConfig cfg;
  cfg.max_scale = 2.0;
  FairShareTracker t(cfg);
  t.charge(user_job(0, 0, 30, kHour, 1), kHour, 0);  // heavy user
  t.charge(user_job(1, 0, 1, kHour, 2), kHour, 0);   // light user
  const Time base = 10 * kHour;
  // Heavy user (ratio ~1.94) keeps the BASE bound — bounds are never
  // relaxed; the light user is boosted, clamped at 1/2.
  EXPECT_EQ(t.adjust_bound(base, 1, 0), base);
  EXPECT_EQ(t.adjust_bound(base, 2, 0), base / 2);
}

TEST(FairShare, RejectsBadConfig) {
  FairShareConfig cfg;
  cfg.half_life = 0;
  EXPECT_THROW(FairShareTracker{cfg}, Error);
  FairShareConfig cfg2;
  cfg2.max_scale = 0.5;
  EXPECT_THROW(FairShareTracker{cfg2}, Error);
}

TEST(UserSummary, AggregatesPerUser) {
  std::vector<JobOutcome> outs;
  auto outcome = [](Job j, Time start) {
    JobOutcome o;
    o.job = j;
    o.start = start;
    o.end = start + j.runtime;
    return o;
  };
  outs.push_back(outcome(user_job(0, 0, 2, kHour, 1), 0));
  outs.push_back(outcome(user_job(1, 0, 2, kHour, 1), 2 * kHour));
  outs.push_back(outcome(user_job(2, 0, 4, 2 * kHour, 3), kHour));
  const auto users = per_user_summary(outs);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].user, 1);
  EXPECT_EQ(users[0].jobs, 2u);
  EXPECT_DOUBLE_EQ(users[0].avg_wait_h, 1.0);
  EXPECT_DOUBLE_EQ(users[0].demand_node_h, 4.0);
  EXPECT_EQ(users[1].user, 3);
  EXPECT_DOUBLE_EQ(users[1].avg_bsld, 1.5);
}

TEST(UserSummary, SpreadDetectsUnevenService) {
  std::vector<JobOutcome> outs;
  auto outcome = [](Job j, Time start) {
    JobOutcome o;
    o.job = j;
    o.start = start;
    o.end = start + j.runtime;
    return o;
  };
  // User 1: five zero-wait jobs (bsld 1). User 2: five jobs waiting 3h.
  for (int i = 0; i < 5; ++i)
    outs.push_back(outcome(user_job(i, 0, 1, kHour, 1), 0));
  for (int i = 5; i < 10; ++i)
    outs.push_back(outcome(user_job(i, 0, 1, kHour, 2), 3 * kHour));
  EXPECT_DOUBLE_EQ(user_service_spread(outs), 4.0);
  // With min_jobs too high, nobody qualifies -> neutral 1.
  EXPECT_DOUBLE_EQ(user_service_spread(outs, 50), 1.0);
}

TEST(FairShareScheduler, NameCarriesSuffix) {
  SearchSchedulerConfig cfg;
  cfg.fairshare = true;
  SearchScheduler s(cfg);
  EXPECT_EQ(s.name(), "DDS/lxf/dynB+fs");
}

TEST(FairShareScheduler, HeavyUserYieldsToLightUser) {
  // Machine busy; two identical jobs queue, one from a user with massive
  // recorded usage (established by earlier jobs), one from a new user.
  // With fair-share on, the light user's job starts first at the drain.
  std::vector<Job> jobs;
  // User 1 burns the machine for a while (several big jobs).
  jobs.push_back(user_job(0, 0, 4, 2 * kHour, 1));
  jobs.push_back(user_job(1, 10, 4, 2 * kHour, 1));
  // Then both users submit an identical 4-node job while busy.
  jobs.push_back(user_job(2, 20, 4, kHour, 1));   // heavy user
  jobs.push_back(user_job(3, 21, 4, kHour, 2));   // light user
  const Trace t = trace_of(std::move(jobs), 4);

  // The bound must straddle the achievable waits (2h / 3h / 4h) so the
  // fair-share scaling moves jobs across the excessive-wait boundary —
  // when every assignment is over-bound the total excess is assignment-
  // invariant and fair-share cannot discriminate.
  SearchSchedulerConfig cfg;
  cfg.fairshare = true;
  cfg.bound = BoundSpec::fixed_bound(3 * kHour);
  SearchScheduler with_fs(cfg);
  const SimResult r = simulate(t, with_fs);
  EXPECT_LT(r.outcomes[3].start, r.outcomes[2].start);

  // Without fair-share the FCFS-older heavy job goes first (lxf ranks the
  // longer-waiting identical job higher).
  SearchSchedulerConfig plain;
  plain.bound = BoundSpec::fixed_bound(3 * kHour);
  SearchScheduler without(plain);
  const SimResult r2 = simulate(t, without);
  EXPECT_LT(r2.outcomes[2].start, r2.outcomes[3].start);
}

TEST(FairShareScheduler, LightUsersGainAtHeavyUsersExpense) {
  // A dominant user floods the queue while several small users each
  // submit a few jobs. Fair-share is usage-weighted: the light users'
  // service must improve substantially and the flooding user pays.
  std::vector<Job> jobs;
  int id = 0;
  for (int i = 0; i < 40; ++i)
    jobs.push_back(user_job(id++, i * 60, 2, 2 * kHour, 1));
  for (int u = 2; u <= 6; ++u)
    for (int i = 0; i < 6; ++i)
      jobs.push_back(user_job(id++, 600 + u * 97 + i * 1800, 2, kHour, u));
  const Trace t = trace_of(std::move(jobs), 8);

  struct Split {
    double heavy_wait = 0.0;
    double light_wait = 0.0;
  };
  auto run = [&](bool fairshare) {
    SearchSchedulerConfig cfg;
    cfg.fairshare = fairshare;
    SearchScheduler s(cfg);
    const SimResult r = simulate(t, s);
    Split split;
    int light_users = 0;
    for (const UserSummary& u : per_user_summary(r.outcomes)) {
      if (u.user == 1) {
        split.heavy_wait = u.avg_wait_h;
      } else {
        split.light_wait += u.avg_wait_h;
        ++light_users;
      }
    }
    split.light_wait /= light_users;
    return split;
  };

  const Split with_fs = run(true);
  const Split without = run(false);
  EXPECT_LT(with_fs.light_wait, 0.7 * without.light_wait);
  EXPECT_GE(with_fs.heavy_wait, without.heavy_wait);
}

}  // namespace
}  // namespace sbs
