#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace sbs {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5);
  t.row().add("b").add(22LL);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), Error);
}

TEST(Table, RejectsAddBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), Error);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b"});
  t.row().add("only-a");
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatDuration, Formats) {
  EXPECT_EQ(format_duration(0), "0h00m00s");
  EXPECT_EQ(format_duration(3661), "1h01m01s");
  EXPECT_EQ(format_duration(-kHour), "-1h00m00s");
  EXPECT_EQ(format_duration(100 * kHour + 59), "100h00m59s");
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_DOUBLE_EQ(to_hours(2 * kHour), 2.0);
  EXPECT_EQ(from_hours(1.5), 5400);
  EXPECT_EQ(from_hours(0.0), 0);
  EXPECT_EQ(from_hours(-2.0), -2 * kHour);
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "test_csv_writer.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.write_row({"1", "x,y"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongArity) {
  const std::string path = "test_csv_arity.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.write_row({"only-one"}), Error);
  std::remove(path.c_str());
}

TEST(CliArgs, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--month=7/03", "--paper", "--scale=0.5"};
  CliArgs args(4, argv, {"month", "paper", "scale"});
  EXPECT_EQ(args.get("month", ""), "7/03");
  EXPECT_TRUE(args.get_bool("paper", false));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, RejectsUnknownOption) {
  const char* argv[] = {"prog", "--nope=1"};
  // Specifically a UsageError, so CLI drivers can map operator mistakes to
  // usage text + exit 2 (a plain Error would exit 1).
  EXPECT_THROW(CliArgs(2, argv, {"yes"}), UsageError);
}

TEST(CliArgs, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, argv, {}), UsageError);
}

// ---------------------------------------------------------------------------
// sbsched exit-code contract: operator errors (unknown subcommand, unknown
// option, malformed flag value) exit 2 with usage on stderr; runtime
// failures (e.g. an unreadable input file) exit 1.

#ifdef SBS_SBSCHED_BIN

int run_sbsched(const std::string& args) {
  const std::string cmd =
      std::string(SBS_SBSCHED_BIN) + " " + args + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return WEXITSTATUS(rc);
}

TEST(SbschedExitCodes, NoArgumentsIsUsage) {
  EXPECT_EQ(run_sbsched(""), 2);
}

TEST(SbschedExitCodes, UnknownSubcommandIsUsage) {
  EXPECT_EQ(run_sbsched("frobnicate"), 2);
}

TEST(SbschedExitCodes, UnknownOptionIsUsage) {
  EXPECT_EQ(run_sbsched("simulate --no-such-flag=1"), 2);
}

TEST(SbschedExitCodes, MissingRequiredFlagIsUsage) {
  EXPECT_EQ(run_sbsched("simulate"), 2);           // no --trace
  EXPECT_EQ(run_sbsched("generate"), 2);           // no --out
  EXPECT_EQ(run_sbsched("report"), 2);             // no --telemetry
  EXPECT_EQ(run_sbsched("serve"), 2);              // no --socket
}

TEST(SbschedExitCodes, MalformedFlagValueIsUsage) {
  EXPECT_EQ(run_sbsched("simulate --trace=x.swf --rstar=banana"), 2);
  EXPECT_EQ(run_sbsched("simulate --trace=x.swf --search-cache=maybe"), 2);
  EXPECT_EQ(run_sbsched("serve --socket=/tmp/x.sock --admission=bogus=1"), 2);
  EXPECT_EQ(run_sbsched("serve --socket=/tmp/x.sock --time-scale=0"), 2);
}

TEST(SbschedExitCodes, RuntimeFailureIsOne) {
  // Well-formed invocation, nonexistent input: a runtime error, not usage.
  EXPECT_EQ(run_sbsched("analyze --trace=/nonexistent/never.swf"), 1);
  EXPECT_EQ(run_sbsched("report --telemetry=/nonexistent/never.jsonl"), 1);
}

TEST(SbschedExitCodes, UsageErrorsNameTheProblemOnStderr) {
  const std::string out_path = "test_cli_stderr.txt";
  const std::string cmd = std::string(SBS_SBSCHED_BIN) +
                          " frobnicate >/dev/null 2>" + out_path;
  ASSERT_EQ(WEXITSTATUS(std::system(cmd.c_str())), 2);
  std::ifstream in(out_path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string err = ss.str();
  EXPECT_NE(err.find("unknown command"), std::string::npos) << err;
  EXPECT_NE(err.find("usage: sbsched"), std::string::npos) << err;
  std::remove(out_path.c_str());
}

#endif  // SBS_SBSCHED_BIN

TEST(CliArgs, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=no", "--d=yes"};
  CliArgs args(5, argv, {"a", "b", "c", "d"});
  EXPECT_FALSE(args.get_bool("a", true));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
  EXPECT_TRUE(args.get_bool("d", false));
}

}  // namespace
}  // namespace sbs
