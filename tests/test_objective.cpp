#include "core/objective.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sbs {
namespace {

using test::job;

TEST(Objective, FirstLevelDominates) {
  // Lower excess wins even with a terrible slowdown.
  EXPECT_TRUE(objective_less({1.0, 999.0}, {2.0, 1.0}));
  EXPECT_FALSE(objective_less({2.0, 1.0}, {1.0, 999.0}));
}

TEST(Objective, SecondLevelBreaksTies) {
  EXPECT_TRUE(objective_less({5.0, 2.0}, {5.0, 3.0}));
  EXPECT_FALSE(objective_less({5.0, 3.0}, {5.0, 2.0}));
}

TEST(Objective, EqualValuesAreNotLess) {
  EXPECT_FALSE(objective_less({5.0, 2.0}, {5.0, 2.0}));
}

TEST(Objective, EpsilonTreatsNearTiesAsTies) {
  // Excess differing by less than epsilon: the slowdown level decides.
  EXPECT_TRUE(objective_less({5.0 + 1e-12, 1.0}, {5.0, 2.0}));
}

TEST(Objective, WorstLosesToEverything) {
  EXPECT_TRUE(objective_less({1e12, 1e12}, worst_objective()));
  EXPECT_FALSE(objective_less(worst_objective(), {1e12, 1e12}));
}

TEST(BoundSpec, FixedResolvesToOmega) {
  const BoundSpec b = BoundSpec::fixed_bound(50 * kHour);
  EXPECT_EQ(b.resolve(kHour, 123456), 50 * kHour);
  EXPECT_EQ(b.label(), "w=50h");
}

TEST(BoundSpec, DynamicResolvesToQueueBound) {
  const BoundSpec b = BoundSpec::dynamic_bound();
  EXPECT_EQ(b.resolve(kHour, 7 * kHour), 7 * kHour);
  EXPECT_EQ(b.label(), "dynB");
}

TEST(BoundSpec, PerRuntimeScalesAndClamps) {
  const BoundSpec b = BoundSpec::per_runtime(kHour, 2.0, 2 * kHour, 10 * kHour);
  // 1h + 2*30m = 2h -> at the lower clamp boundary.
  EXPECT_EQ(b.resolve(30 * kMinute, 0), 2 * kHour);
  // 1h + 2*2h = 5h -> inside range.
  EXPECT_EQ(b.resolve(2 * kHour, 0), 5 * kHour);
  // 1h + 2*10h = 21h -> clamped to 10h.
  EXPECT_EQ(b.resolve(10 * kHour, 0), 10 * kHour);
  EXPECT_EQ(b.label(), "w(T)");
}

TEST(BoundSpec, ZeroFixedBoundAllowed) {
  const BoundSpec b = BoundSpec::fixed_bound(0);
  EXPECT_EQ(b.resolve(kHour, kHour), 0);
}

TEST(DynamicBound, MaxCurrentWaitOverQueue) {
  const Job a = job(0, 100, 1, kHour);
  const Job b = job(1, 40, 1, kHour);
  std::vector<WaitingJob> q;
  q.push_back(WaitingJob{&a, a.runtime});
  q.push_back(WaitingJob{&b, b.runtime});
  EXPECT_EQ(dynamic_bound_of(q, 200), 160);  // job b waited longest
}

TEST(DynamicBound, EmptyQueueIsZero) {
  EXPECT_EQ(dynamic_bound_of({}, 12345), 0);
}

TEST(ObjectiveComparator, DefaultIsHierarchical) {
  const ObjectiveComparator cmp;
  EXPECT_TRUE(cmp.less({1.0, 999.0}, {2.0, 1.0}));
  EXPECT_TRUE(cmp.less({5.0, 2.0}, {5.0, 3.0}));
}

TEST(ObjectiveComparator, WeightedTradesLevels) {
  // With alpha = 1, one hour of excess trades against one slowdown unit —
  // the weighted comparator can prefer more excess when slowdown drops.
  ObjectiveComparator cmp;
  cmp.weighted_alpha = 1.0;
  EXPECT_TRUE(cmp.less({2.0, 1.0}, {1.0, 5.0}));   // 3 < 6
  EXPECT_FALSE(cmp.less({2.0, 5.0}, {1.0, 5.0}));  // 7 > 6
}

TEST(ObjectiveComparator, LargeAlphaApproachesHierarchical) {
  ObjectiveComparator cmp;
  cmp.weighted_alpha = 1e9;
  EXPECT_TRUE(cmp.less({1.0, 999.0}, {2.0, 1.0}));
}

}  // namespace
}  // namespace sbs
