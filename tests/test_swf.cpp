#include "jobs/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::job;
using test::trace_of;

TEST(Swf, RoundTripPreservesJobs) {
  Trace original = trace_of(
      {job(0, 0, 4, 3600, 7200), job(1, 100, 16, 600, 900)}, 64);
  original.name = "roundtrip";
  std::stringstream buffer;
  write_swf(buffer, original);
  const Trace parsed = read_swf(buffer);
  ASSERT_EQ(parsed.jobs.size(), 2u);
  EXPECT_EQ(parsed.capacity, 64);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parsed.jobs[i].submit, original.jobs[i].submit);
    EXPECT_EQ(parsed.jobs[i].nodes, original.jobs[i].nodes);
    EXPECT_EQ(parsed.jobs[i].runtime, original.jobs[i].runtime);
    EXPECT_EQ(parsed.jobs[i].requested, original.jobs[i].requested);
  }
}

TEST(Swf, ParsesMaxNodesHeader) {
  std::stringstream in("; MaxNodes: 77\n1 0 -1 60 4 -1 -1 4 120 -1 1\n");
  const Trace t = read_swf(in);
  EXPECT_EQ(t.capacity, 77);
  ASSERT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(t.jobs[0].nodes, 4);
  EXPECT_EQ(t.jobs[0].requested, 120);
}

TEST(Swf, MaxProcsDividedByProcsPerNode) {
  std::stringstream in("; MaxProcs: 256\n1 0 -1 60 8 -1 -1 8 120 -1 1\n");
  SwfReadOptions options;
  options.procs_per_node = 2;
  const Trace t = read_swf(in, options);
  EXPECT_EQ(t.capacity, 128);
  EXPECT_EQ(t.jobs[0].nodes, 4);  // 8 procs / 2 per node
}

TEST(Swf, MaxNodesWinsOverMaxProcs) {
  std::stringstream in("; MaxNodes: 100\n; MaxProcs: 400\n1 0 -1 60 4\n");
  const Trace t = read_swf(in);
  EXPECT_EQ(t.capacity, 100);
}

TEST(Swf, FallsBackToRequestedProcs) {
  // Field 5 (allocated) = -1, field 8 (requested) = 6.
  std::stringstream in("; MaxNodes: 32\n1 0 -1 60 -1 -1 -1 6 -1 -1 1\n");
  const Trace t = read_swf(in);
  ASSERT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(t.jobs[0].nodes, 6);
  // Missing requested time falls back to runtime.
  EXPECT_EQ(t.jobs[0].requested, 60);
}

TEST(Swf, SkipsInvalidJobsByDefault) {
  std::stringstream in(
      "; MaxNodes: 32\n"
      "1 0 -1 -1 4\n"    // no runtime
      "2 0 -1 60 -1\n"   // no processors anywhere
      "3 5 -1 60 4\n");  // good
  const Trace t = read_swf(in);
  ASSERT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(t.jobs[0].submit, 5);
}

TEST(Swf, StrictModeThrowsOnInvalid) {
  std::stringstream in("; MaxNodes: 32\n1 0 -1 -1 4\n");
  SwfReadOptions options;
  options.skip_invalid = false;
  EXPECT_THROW(read_swf(in, options), Error);
}

TEST(Swf, RequestedClampedUpToRuntime) {
  // Requested 10 < runtime 60; reader clamps requested to runtime so the
  // library invariant R >= T holds.
  std::stringstream in("; MaxNodes: 32\n1 0 -1 60 4 -1 -1 4 10 -1 1\n");
  const Trace t = read_swf(in);
  EXPECT_EQ(t.jobs[0].requested, 60);
}

TEST(Swf, TooWideJobSkipped) {
  std::stringstream in("; MaxNodes: 4\n1 0 -1 60 8\n2 0 -1 60 2\n");
  const Trace t = read_swf(in);
  ASSERT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(t.jobs[0].nodes, 2);
}

TEST(Swf, WindowSpansSubmitToLastEnd) {
  std::stringstream in("; MaxNodes: 8\n1 100 -1 60 1\n2 500 -1 100 1\n");
  const Trace t = read_swf(in);
  EXPECT_EQ(t.window_begin, 100);
  EXPECT_EQ(t.window_end, 600);
}

TEST(Swf, UserFieldRoundTrips) {
  Trace original = trace_of({job(0, 0, 4, 3600)}, 64);
  original.jobs[0].user = 17;
  std::stringstream buffer;
  write_swf(buffer, original);
  const Trace parsed = read_swf(buffer);
  ASSERT_EQ(parsed.jobs.size(), 1u);
  EXPECT_EQ(parsed.jobs[0].user, 17);
}

TEST(Swf, MissingUserFieldDefaultsToZero) {
  std::stringstream in("; MaxNodes: 32\n1 0 -1 60 4\n");
  const Trace t = read_swf(in);
  EXPECT_EQ(t.jobs[0].user, 0);
}

TEST(Swf, ReadStatsCountEachSkipReason) {
  std::stringstream in(
      "; MaxNodes: 8\n"
      "1 0 -1 60 4\n"        // accepted
      "2 0 -1 60\n"          // short: 4 fields
      "3 0 -1 60 1e300\n"    // malformed: overflowing processor count
      "4 0 -1 -1 4\n"        // non-positive runtime
      "5 0 -1 60 16\n");     // wider than the machine
  SwfReadStats stats;
  const Trace t = read_swf(in, {}, &stats);
  EXPECT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(stats.data_lines, 5u);
  EXPECT_EQ(stats.jobs_accepted, 1u);
  EXPECT_EQ(stats.skipped_short, 1u);
  EXPECT_EQ(stats.skipped_malformed, 1u);
  EXPECT_EQ(stats.skipped_nonpositive, 1u);
  EXPECT_EQ(stats.skipped_too_wide, 1u);
  EXPECT_EQ(stats.skipped_total(), 4u);
  EXPECT_EQ(stats.capacity_source, SwfCapacitySource::MaxNodes);
}

TEST(Swf, ReadStatsReportCapacitySource) {
  SwfReadStats stats;
  std::stringstream none("1 0 -1 60 4\n");
  read_swf(none, {}, &stats);
  EXPECT_EQ(stats.capacity_source, SwfCapacitySource::Default);
  std::stringstream procs("; MaxProcs: 256\n1 0 -1 60 4\n");
  read_swf(procs, {}, &stats);
  EXPECT_EQ(stats.capacity_source, SwfCapacitySource::MaxProcs);
  EXPECT_EQ(swf_capacity_source_name(SwfCapacitySource::MaxProcs),
            "MaxProcs header");
}

TEST(Swf, OverflowingIntFieldsRejectedNotCast) {
  // Job number and user id are cast to int; values beyond int range would
  // be undefined behaviour to cast, so the line must be dropped instead.
  std::stringstream in(
      "; MaxNodes: 8\n"
      "1e10 0 -1 60 4\n"                       // job number overflows int
      "2 0 -1 60 4 -1 -1 4 60 -1 1 1e10\n"     // user id overflows int
      "3 1e300 -1 60 4\n");                    // submit overflows Time
  SwfReadStats stats;
  const Trace t = read_swf(in, {}, &stats);
  EXPECT_TRUE(t.jobs.empty());
  EXPECT_EQ(stats.skipped_malformed, 3u);
}

TEST(Swf, NanAndInfNeverProduceJobs) {
  // Whether the platform's stream extraction parses "nan"/"inf" into a
  // double (then rejected as malformed) or fails the extraction (then the
  // line is short), no job may come out of these lines.
  std::stringstream in(
      "; MaxNodes: 8\n"
      "1 nan -1 60 4\n"
      "2 0 -1 inf 4\n"
      "3 0 -1 60 nan\n");
  SwfReadStats stats;
  const Trace t = read_swf(in, {}, &stats);
  EXPECT_TRUE(t.jobs.empty());
  EXPECT_EQ(stats.skipped_total(), 3u);
  EXPECT_EQ(stats.jobs_accepted, 0u);
}

TEST(Swf, StrictModeThrowsOnMalformedNumbers) {
  std::stringstream in("; MaxNodes: 8\n1 0 -1 60 1e300\n");
  SwfReadOptions options;
  options.skip_invalid = false;
  EXPECT_THROW(read_swf(in, options), Error);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/path.swf"), Error);
}

TEST(Swf, EmptyAndCommentOnlyInputYieldsEmptyTrace) {
  std::stringstream in("; just a comment\n\n");
  const Trace t = read_swf(in);
  EXPECT_TRUE(t.jobs.empty());
}

// Robustness fuzz: random garbage lines mixed with valid jobs must never
// crash the lenient reader, and every surviving job must be valid.
class SwfFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwfFuzz, LenientReaderSurvivesGarbage) {
  Rng rng(GetParam());
  std::stringstream in;
  in << "; MaxNodes: 64\n";
  std::size_t valid = 0;
  for (int line = 0; line < 300; ++line) {
    switch (rng.index(5)) {
      case 0: {  // valid job line
        in << line << ' ' << rng.uniform_int(0, 100000) << " -1 "
           << rng.uniform_int(1, 86400) << ' ' << rng.uniform_int(1, 64)
           << "\n";
        ++valid;
        break;
      }
      case 1:  // truncated
        in << line << ' ' << rng.uniform_int(0, 1000) << "\n";
        break;
      case 2:  // negative / missing fields
        in << line << " -1 -1 -1 -1 -1 -1 -1 -1\n";
        break;
      case 3:  // non-numeric garbage
        in << "xx yy zz ## " << rng.uniform_int(0, 9) << "\n";
        break;
      default:  // stray comment
        in << "; noise " << rng.uniform_int(0, 9) << "\n";
        break;
    }
  }
  const Trace t = read_swf(in);
  EXPECT_EQ(t.capacity, 64);
  // Exactly the well-formed lines survive; everything else is dropped.
  EXPECT_EQ(t.jobs.size(), valid);
  EXPECT_NO_THROW(t.validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwfFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sbs
