// Service-mode tests: wire framing, request parsing, the admission
// ladder's backpressure/shed/drain semantics, checkpoint state round
// trips, and in-process end-to-end runs of the daemon over a real
// Unix-domain socket (submit/status/stats/drain, resume from a periodic
// checkpoint, telemetry reconciliation).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "service/admission.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/error.hpp"

namespace sbs::service {
namespace {

// ---------------------------------------------------------------------------
// Framing

TEST(Framing, RoundTripsFramesFedByteAtATime) {
  const std::vector<std::string> payloads = {"{}", R"({"op":"stats","id":7})",
                                             std::string(1000, 'x')};
  std::string wire;
  for (const std::string& p : payloads) encode_frame(p, wire);

  FrameDecoder decoder;
  std::vector<std::string> out;
  for (const char c : wire) {
    decoder.feed(std::string_view(&c, 1));
    while (auto frame = decoder.next()) out.push_back(*frame);
  }
  EXPECT_EQ(out, payloads);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(Framing, DecoderRejectsOversizedPrefix) {
  // A prefix announcing 2 MiB must throw before any payload arrives.
  const char prefix[4] = {0x00, 0x20, 0x00, 0x00};
  FrameDecoder decoder;
  decoder.feed(std::string_view(prefix, 4));
  EXPECT_THROW(decoder.next(), Error);
}

TEST(Framing, DecoderRejectsZeroLengthPrefix) {
  // A zero-length frame can never carry a JSON object; the decoder must
  // flag it as a protocol error the moment the header is complete instead
  // of stalling forever waiting for a body that cannot exist.
  const char prefix[4] = {0x00, 0x00, 0x00, 0x00};
  FrameDecoder decoder;
  decoder.feed(std::string_view(prefix, 4));
  EXPECT_THROW(decoder.next(), Error);
}

TEST(Framing, EncodeRejectsEmptyPayload) {
  std::string wire;
  EXPECT_THROW(encode_frame("", wire), Error);
}

TEST(Framing, EncodeRejectsOversizedPayload) {
  std::string wire;
  const std::string big(kMaxFrameBytes + 1, 'x');
  EXPECT_THROW(encode_frame(big, wire), Error);
}

TEST(Framing, PartialFrameReportsPendingBytes) {
  std::string wire;
  encode_frame("{\"a\":1}", wire);
  FrameDecoder decoder;
  decoder.feed(std::string_view(wire).substr(0, wire.size() - 2));
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_GT(decoder.pending_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Request parsing

TEST(ParseRequest, AcceptsEveryOpAndDefaultsOptionalFields) {
  const Request submit = parse_request(
      R"({"op":"submit","id":3,"nodes":4,"runtime":600})");
  EXPECT_EQ(submit.op, Request::Op::Submit);
  EXPECT_EQ(submit.id, 3);
  EXPECT_EQ(submit.submit.nodes, 4);
  EXPECT_EQ(submit.submit.runtime, 600);
  EXPECT_EQ(submit.submit.requested, 0);
  EXPECT_EQ(submit.submit.user, 0);
  EXPECT_EQ(submit.submit.priority, 0);

  const Request full = parse_request(
      R"({"op":"submit","id":4,"nodes":2,"runtime":60,"requested":120,)"
      R"("user":9,"priority":3})");
  EXPECT_EQ(full.submit.requested, 120);
  EXPECT_EQ(full.submit.user, 9);
  EXPECT_EQ(full.submit.priority, 3);

  const Request status = parse_request(R"({"op":"status","id":1,"job":42})");
  EXPECT_EQ(status.op, Request::Op::Status);
  EXPECT_EQ(status.job, 42);

  EXPECT_EQ(parse_request(R"({"op":"stats","id":1})").op, Request::Op::Stats);
  EXPECT_EQ(parse_request(R"({"op":"drain","id":1})").op, Request::Op::Drain);
}

TEST(ParseRequest, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("not json"), Error);
  EXPECT_THROW(parse_request("[1,2]"), Error);                  // not an object
  EXPECT_THROW(parse_request(R"({"id":1})"), Error);            // no op
  EXPECT_THROW(parse_request(R"({"op":"submit"})"), Error);     // no id
  EXPECT_THROW(parse_request(R"({"op":"mystery","id":1})"), Error);
  EXPECT_THROW(parse_request(R"({"op":"status","id":1})"), Error);  // no job
  // Submission field ranges.
  EXPECT_THROW(parse_request(R"({"op":"submit","id":1,"runtime":60})"),
               Error);  // no nodes
  EXPECT_THROW(parse_request(R"({"op":"submit","id":1,"nodes":4})"),
               Error);  // no runtime
  EXPECT_THROW(
      parse_request(R"({"op":"submit","id":1,"nodes":0,"runtime":60})"),
      Error);
  EXPECT_THROW(
      parse_request(R"({"op":"submit","id":1,"nodes":4,"runtime":0})"),
      Error);
  EXPECT_THROW(parse_request(R"({"op":"submit","id":1,"nodes":4,)"
                             R"("runtime":60,"priority":-1})"),
               Error);
}

// ---------------------------------------------------------------------------
// Quantiles

TEST(NearestRank, MatchesHandComputedRanks) {
  EXPECT_EQ(nearest_rank_us({}, 0.5), 0u);
  const std::vector<std::uint64_t> s = {40, 10, 30, 20};  // unsorted on entry
  EXPECT_EQ(nearest_rank_us(s, 0.50), 20u);   // ceil(0.5*4)=2nd
  EXPECT_EQ(nearest_rank_us(s, 0.99), 40u);   // ceil(3.96)=4th
  EXPECT_EQ(nearest_rank_us(s, 0.001), 10u);  // clamped to 1st
}

// ---------------------------------------------------------------------------
// Admission control

AdmissionConfig twitchy_admission() {
  // alpha=1 makes the EWMA equal the latest sample, so the ladder's
  // response to a signal sequence is exact and easy to reason about.
  AdmissionConfig cfg;
  cfg.queue_limit = 10;
  cfg.retry_base_ms = 50;
  cfg.retry_cap_ms = 200;
  cfg.priority_levels = 4;
  cfg.health = resilience::HealthConfig{};
  cfg.health.alpha = 1.0;
  cfg.health.queue_high = 10.0;
  cfg.health.recovery_fraction = 0.5;
  return cfg;
}

resilience::HealthSignal depth(double queue) {
  resilience::HealthSignal s;
  s.queue_depth = queue;
  return s;
}

TEST(Admission, BackpressureDelayGrowsWithOverflowAndCaps) {
  const AdmissionControl ac{twitchy_admission()};
  EXPECT_EQ(ac.admit(0, 9).kind, AdmissionVerdict::Kind::Admit);

  const AdmissionVerdict at_limit = ac.admit(0, 10);
  EXPECT_EQ(at_limit.kind, AdmissionVerdict::Kind::RetryAfter);
  EXPECT_EQ(at_limit.retry_ms, 50);  // one base unit at the boundary

  EXPECT_EQ(ac.admit(0, 12).retry_ms, 150);  // 3 jobs over -> 3 units
  EXPECT_EQ(ac.admit(0, 50).retry_ms, 200);  // capped
}

TEST(Admission, ShedFloorWalksUpUnderOverloadAndBackDownOnRecovery) {
  AdmissionControl ac{twitchy_admission()};
  EXPECT_EQ(ac.state(), AdmissionState::Accepting);

  // Each Overloaded decision raises the floor one class, saturating below
  // the top class (priority 3 is never shed).
  for (int expected : {1, 2, 3, 3}) {
    ac.observe_decision(depth(20.0));
    EXPECT_EQ(ac.shed_floor(), expected);
  }
  EXPECT_EQ(ac.state(), AdmissionState::Shedding);
  EXPECT_EQ(ac.admit(2, 0).kind, AdmissionVerdict::Kind::Shed);
  EXPECT_EQ(ac.admit(2, 0).floor, 3);
  EXPECT_EQ(ac.admit(3, 0).kind, AdmissionVerdict::Kind::Admit);

  // The hysteresis band (between recover*high and high) holds the floor.
  ac.observe_decision(depth(7.0));
  EXPECT_EQ(ac.shed_floor(), 3);

  // Recovered decisions walk it back down to zero.
  for (int expected : {2, 1, 0, 0}) {
    ac.observe_decision(depth(0.0));
    EXPECT_EQ(ac.shed_floor(), expected);
  }
  EXPECT_EQ(ac.state(), AdmissionState::Accepting);
  EXPECT_EQ(ac.admit(0, 0).kind, AdmissionVerdict::Kind::Admit);
}

TEST(Admission, DrainIsOneWayAndRefusesEveryPriority) {
  AdmissionControl ac{twitchy_admission()};
  ac.begin_drain();
  EXPECT_EQ(ac.state(), AdmissionState::Draining);
  EXPECT_EQ(ac.admit(3, 0).kind, AdmissionVerdict::Kind::Drain);
  EXPECT_EQ(ac.admit(0, 50).kind, AdmissionVerdict::Kind::Drain);
  // Recovery signals do not un-drain.
  ac.observe_decision(depth(0.0));
  EXPECT_EQ(ac.state(), AdmissionState::Draining);
}

TEST(Admission, StateRoundTripsThroughJson) {
  AdmissionControl ac{twitchy_admission()};
  ac.observe_decision(depth(20.0));
  ac.observe_decision(depth(20.0));
  ASSERT_EQ(ac.shed_floor(), 2);

  obs::JsonWriter w;
  w.begin_object();
  ac.append_state(w, "admission");
  w.end_object();
  const obs::JsonValue v = obs::parse_json(w.str());

  AdmissionControl restored{twitchy_admission()};
  restored.restore_state(*v.find("admission"));
  EXPECT_EQ(restored.shed_floor(), 2);
  EXPECT_FALSE(restored.draining());
  // The restored monitor continues the same trajectory.
  restored.observe_decision(depth(20.0));
  ac.observe_decision(depth(20.0));
  EXPECT_EQ(restored.shed_floor(), ac.shed_floor());
}

TEST(Admission, SpecParserOverridesKnobsAndRejectsUnknownKeys) {
  const AdmissionConfig cfg = parse_admission_spec(
      "limit=7,retry-base-ms=10,retry-cap-ms=40,priorities=2,queue=5,"
      "think-ms=99,alpha=0.7,recover=0.25");
  EXPECT_EQ(cfg.queue_limit, 7u);
  EXPECT_EQ(cfg.retry_base_ms, 10);
  EXPECT_EQ(cfg.retry_cap_ms, 40);
  EXPECT_EQ(cfg.priority_levels, 2);
  EXPECT_DOUBLE_EQ(cfg.health.queue_high, 5.0);
  EXPECT_DOUBLE_EQ(cfg.health.think_ms_high, 99.0);
  EXPECT_DOUBLE_EQ(cfg.health.alpha, 0.7);
  EXPECT_DOUBLE_EQ(cfg.health.recovery_fraction, 0.25);

  // Empty spec = defaults.
  EXPECT_EQ(parse_admission_spec("").queue_limit, AdmissionConfig{}.queue_limit);

  EXPECT_THROW(parse_admission_spec("bogus=1"), UsageError);
  EXPECT_THROW(parse_admission_spec("limit"), UsageError);
  EXPECT_THROW(parse_admission_spec("limit=abc"), UsageError);
  EXPECT_THROW(parse_admission_spec("limit=0"), UsageError);
}

// ---------------------------------------------------------------------------
// End-to-end over a real socket

/// Runs a SchedulerService on its own thread. The constructor returns once
/// the socket is listening (SchedulerService binds in its constructor), so
/// clients can connect immediately.
struct Harness {
  explicit Harness(ServiceConfig cfg) : config(std::move(cfg)) {
    service = std::make_unique<SchedulerService>(config);
    thread = std::thread([this] { final_stats = service->run(); });
  }

  ~Harness() {
    if (thread.joinable()) thread.join();
    std::remove(config.socket_path.c_str());
  }

  void join() { thread.join(); }

  ServiceConfig config;
  std::unique_ptr<SchedulerService> service;
  std::thread thread;
  ServiceStats final_stats;
};

std::string sock_path(const std::string& tag) {
  return testing::TempDir() + "/sbs_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

SubmitRequest job_of(int nodes, Time runtime, int priority = 0) {
  SubmitRequest j;
  j.nodes = nodes;
  j.runtime = runtime;
  j.priority = priority;
  return j;
}

std::int64_t json_int(const obs::JsonValue& v, const char* key) {
  const obs::JsonValue* f = v.find(key);
  return f ? f->as_int() : -1;
}

/// Polls the stats op until `pred` holds or ~10 s elapse.
template <typename Pred>
obs::JsonValue wait_for(Client& client, Pred pred) {
  for (int i = 0; i < 1000; ++i) {
    obs::JsonValue stats = client.stats();
    if (pred(stats)) return stats;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "condition not reached within the polling budget";
  return obs::JsonValue{};
}

TEST(ServiceEndToEnd, SubmitsRunDrainAndTelemetryReconciles) {
  const std::string tel_path = testing::TempDir() + "/sbs_svc_e2e.jsonl";
  obs::Telemetry tel(std::make_unique<obs::JsonlSink>(tel_path));

  ServiceConfig cfg;
  cfg.socket_path = sock_path("e2e");
  cfg.capacity = 8;
  cfg.time_scale = 20000;  // 600 s jobs finish in 30 ms of wall clock
  cfg.batch_ms = 1;
  cfg.telemetry = &tel;

  ServiceStats final_stats;
  {
    Harness h(cfg);
    Client client(cfg.socket_path);
    std::vector<int> ids;
    for (int i = 0; i < 6; ++i) {
      const obs::JsonValue r = client.submit(job_of(4, 600, i % 4));
      ASSERT_EQ(r.find("status")->as_string(), "accepted");
      ids.push_back(static_cast<int>(json_int(r, "job")));
    }
    // Server-assigned ids are dense and ordered.
    for (int i = 0; i < 6; ++i) EXPECT_EQ(ids[i], i);

    const obs::JsonValue st = client.status(ids.front());
    const std::string state = st.find("state")->as_string();
    EXPECT_TRUE(state == "waiting" || state == "running" || state == "done")
        << state;

    // Let everything finish on the virtual clock, then drain.
    wait_for(client, [](const obs::JsonValue& s) {
      return json_int(s, "completed") == 6;
    });
    EXPECT_EQ(client.status(ids.front()).find("state")->as_string(), "done");
    client.drain();
    h.join();
    final_stats = h.final_stats;
  }

  EXPECT_EQ(final_stats.admitted, 6u);
  EXPECT_EQ(final_stats.started, 6u);
  EXPECT_EQ(final_stats.completed, 6u);
  EXPECT_EQ(final_stats.protocol_errors, 0u);
  EXPECT_EQ(final_stats.rejected_backpressure, 0u);
  EXPECT_GT(final_stats.decisions, 0u);

  // The stream must reconcile: read_telemetry throws on any mismatch
  // between the final service record and the tallied events.
  tel.flush();
  const obs::TelemetrySummary summary = obs::read_telemetry(tel_path);
  ASSERT_EQ(summary.runs.size(), 1u);
  const obs::RunReport& rep = summary.runs.front();
  EXPECT_TRUE(rep.has_service_record);
  EXPECT_EQ(rep.admits, 6u);
  EXPECT_EQ(rep.finishes, 6u);
  EXPECT_EQ(rep.drain_begins, 1u);
  EXPECT_EQ(rep.drain_completes, 1u);
  std::remove(tel_path.c_str());
}

TEST(ServiceEndToEnd, RejectsJobsWiderThanTheMachine) {
  ServiceConfig cfg;
  cfg.socket_path = sock_path("wide");
  cfg.capacity = 8;
  Harness h(cfg);
  {
    Client client(cfg.socket_path);
    const obs::JsonValue r = client.submit(job_of(64, 600));
    EXPECT_EQ(r.find("status")->as_string(), "error");
    client.drain();
  }
  h.join();
  EXPECT_EQ(h.final_stats.protocol_errors, 1u);
  EXPECT_EQ(h.final_stats.admitted, 0u);
}

TEST(ServiceEndToEnd, BackpressureKicksInAtTheQueueLimit) {
  ServiceConfig cfg;
  cfg.socket_path = sock_path("bp");
  cfg.capacity = 4;
  cfg.time_scale = 1;  // jobs effectively never finish during the test
  cfg.admission.queue_limit = 2;
  Harness h(cfg);
  {
    Client client(cfg.socket_path);
    // Full-width jobs: only one can run, the rest pile up in the queue.
    bool saw_retry = false;
    std::int64_t delay_ms = 0;
    for (int i = 0; i < 6; ++i) {
      const obs::JsonValue r = client.submit(job_of(4, 1 << 20));
      if (r.find("status")->as_string() == "retry_after") {
        saw_retry = true;
        delay_ms = json_int(r, "delay_ms");
        break;
      }
    }
    EXPECT_TRUE(saw_retry);
    EXPECT_GT(delay_ms, 0);
    client.drain();
  }
  h.join();
  EXPECT_GT(h.final_stats.rejected_backpressure, 0u);
  // Drain completed the admitted jobs by fast-forwarding virtual time.
  EXPECT_EQ(h.final_stats.completed, h.final_stats.admitted);
}

TEST(ServiceEndToEnd, ShedsLowPriorityWhenOverloaded) {
  ServiceConfig cfg;
  cfg.socket_path = sock_path("shed");
  cfg.capacity = 4;
  cfg.time_scale = 1;
  cfg.batch_ms = 1;
  // Overload instantly: any waiting job at a decision trips the monitor.
  cfg.admission = parse_admission_spec("queue=1,alpha=1,recover=0.5");
  Harness h(cfg);
  {
    Client client(cfg.socket_path);
    // One running + a few waiting keeps every decision "overloaded".
    for (int i = 0; i < 4; ++i)
      ASSERT_EQ(client.submit(job_of(4, 1 << 20, 3)).find("status")->as_string(),
                "accepted");
    wait_for(client, [](const obs::JsonValue& s) {
      return json_int(s, "shed_floor") >= 1;
    });
    const obs::JsonValue r = client.submit(job_of(1, 60, 0));
    EXPECT_EQ(r.find("status")->as_string(), "shed");
    EXPECT_GE(json_int(r, "floor"), 1);
    // The top priority class is never shed (only backpressure applies,
    // and the queue is below its limit here).
    const obs::JsonValue top = client.submit(job_of(1, 60, 3));
    EXPECT_EQ(top.find("status")->as_string(), "accepted");
    client.drain();
  }
  h.join();
  EXPECT_GT(h.final_stats.rejected_shed, 0u);
}

TEST(ServiceEndToEnd, MaxDecisionsDrainsWithoutAClientRequest) {
  ServiceConfig cfg;
  cfg.socket_path = sock_path("maxd");
  cfg.capacity = 8;
  cfg.time_scale = 1000;
  cfg.batch_ms = 1;
  cfg.max_decisions = 1;
  Harness h(cfg);
  {
    Client client(cfg.socket_path);
    ASSERT_EQ(client.submit(job_of(2, 600)).find("status")->as_string(),
              "accepted");
  }
  h.join();  // the service exits by itself after the first decision
  EXPECT_EQ(h.final_stats.completed, 1u);
  EXPECT_GE(h.final_stats.decisions, 1u);
}

TEST(ServiceEndToEnd, ResumeRestoresTheAdmissionQueueFromACheckpoint) {
  const std::string ckpt = testing::TempDir() + "/sbs_svc_resume.ckpt";
  const std::string copy = ckpt + ".captured";

  ServiceConfig cfg;
  cfg.socket_path = sock_path("ckpt");
  cfg.capacity = 4;
  cfg.time_scale = 1;  // nothing completes on its own
  cfg.batch_ms = 1;
  cfg.checkpoint_path = ckpt;
  cfg.checkpoint_every = 1;
  {
    Harness h(cfg);
    Client client(cfg.socket_path);
    // 2 two-node jobs run, 2 wait.
    for (int i = 0; i < 4; ++i)
      ASSERT_EQ(client.submit(job_of(2, 1 << 20)).find("status")->as_string(),
                "accepted");
    wait_for(client, [](const obs::JsonValue& s) {
      return json_int(s, "running") == 2 && json_int(s, "queue_depth") == 2 &&
             json_int(s, "checkpoints") >= 1;
    });
    // Capture the periodic checkpoint as a SIGKILL would leave it: with
    // the queue still loaded (the final drain checkpoint will be empty).
    {
      std::ifstream in(ckpt, std::ios::binary);
      std::ofstream out(copy, std::ios::binary);
      out << in.rdbuf();
    }
    client.drain();
    h.join();
  }

  ServiceConfig cfg2 = cfg;
  cfg2.socket_path = sock_path("ckpt2");
  cfg2.checkpoint_path.clear();
  cfg2.checkpoint_every = 0;
  cfg2.resume_path = copy;
  {
    Harness h(cfg2);
    Client client(cfg2.socket_path);
    const obs::JsonValue stats = client.stats();
    EXPECT_EQ(json_int(stats, "running"), 2);
    EXPECT_EQ(json_int(stats, "queue_depth"), 2);
    EXPECT_EQ(json_int(stats, "admitted"), 4);  // counters restored too
    // Job state survived: id 0 started, id 3 is still waiting.
    EXPECT_EQ(client.status(0).find("state")->as_string(), "running");
    EXPECT_EQ(client.status(3).find("state")->as_string(), "waiting");
    client.drain();
    h.join();
    // Draining the restored service completes all four restored jobs.
    EXPECT_EQ(h.final_stats.completed, 4u);
  }
  std::remove(ckpt.c_str());
  std::remove(copy.c_str());
}

TEST(ServiceEndToEnd, InterruptFlagTriggersGracefulDrain) {
  std::atomic<bool> interrupt{false};
  ServiceConfig cfg;
  cfg.socket_path = sock_path("intr");
  cfg.capacity = 8;
  cfg.time_scale = 1;
  cfg.interrupt = &interrupt;
  Harness h(cfg);
  {
    Client client(cfg.socket_path);
    for (int i = 0; i < 3; ++i)
      ASSERT_EQ(client.submit(job_of(2, 1 << 20)).find("status")->as_string(),
                "accepted");
  }
  interrupt.store(true);
  h.join();
  EXPECT_EQ(h.final_stats.admitted, 3u);
  EXPECT_EQ(h.final_stats.completed, 3u);  // drained, not abandoned
}

}  // namespace
}  // namespace sbs::service
