// Crash-safety tests: the durable JSONL sink (fsync cadence, size
// rotation, append-on-resume), the torn-tail tolerance of the telemetry
// reader, the versioned checkpoint file format, and — the acceptance
// criterion — differential resume bit-identity: a run cut at a checkpoint
// and resumed must produce byte-for-byte the outcomes of the run that was
// never interrupted, for the backfill baseline, the full search stack
// (cache + warm start + threads) under faults, and the governed ladder.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/policy_factory.hpp"
#include "fed/federation.hpp"
#include "fed/meta_scheduler.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/governed_scheduler.hpp"
#include "resilience/governor.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace sbs {
namespace {

using resilience::CheckpointData;
using resilience::GovernedScheduler;
using resilience::GovernorConfig;
using test::job;
using test::trace_of;

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// JsonlSink durability knobs

TEST(JsonlSink, PerLineFsyncLosesNothing) {
  const std::string path = temp_path("sbs_sink_fsync.jsonl");
  obs::JsonlSinkOptions opt;
  opt.fsync_every_lines = 1;
  {
    obs::JsonlSink sink(path, opt);
    for (int i = 0; i < 5; ++i)
      sink.write("{\"i\":" + std::to_string(i) + "}");
    // No explicit flush: the per-line barrier already persisted everything.
    EXPECT_EQ(sink.lines_written(), 5u);
  }
  EXPECT_EQ(read_lines(path).size(), 5u);
  std::remove(path.c_str());
}

TEST(JsonlSink, RotatesBySizeAndReadersFollowTheSegments) {
  const std::string path = temp_path("sbs_sink_rotate.jsonl");
  obs::JsonlSinkOptions opt;
  opt.flush_bytes = 1;    // drain per record so segment_bytes is live
  opt.rotate_bytes = 64;  // a few records per segment
  {
    obs::JsonlSink sink(path, opt);
    for (int i = 0; i < 20; ++i)
      sink.write("{\"record\":" + std::to_string(i) + "}");
    EXPECT_GT(sink.segments_opened(), 1u);
  }
  const std::vector<std::string> segments = obs::JsonlSink::segment_paths(path);
  ASSERT_GT(segments.size(), 1u);
  EXPECT_EQ(segments.front(), path);
  std::size_t total = 0;
  for (const std::string& segment : segments)
    total += read_lines(segment).size();
  EXPECT_EQ(total, 20u);  // rotation never drops or duplicates a record
  for (const std::string& segment : segments) std::remove(segment.c_str());
}

TEST(JsonlSink, AppendContinuesAnExistingStream) {
  const std::string path = temp_path("sbs_sink_append.jsonl");
  {
    obs::JsonlSink sink(path);
    sink.write("{\"phase\":\"before-crash\"}");
  }
  obs::JsonlSinkOptions opt;
  opt.append = true;
  {
    obs::JsonlSink sink(path, opt);
    sink.write("{\"phase\":\"after-resume\"}");
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"phase\":\"before-crash\"}");
  EXPECT_EQ(lines[1], "{\"phase\":\"after-resume\"}");
  std::remove(path.c_str());
}

TEST(JsonlSink, FlushAllDrainsLiveSinks) {
  const std::string path = temp_path("sbs_sink_flushall.jsonl");
  obs::JsonlSink sink(path);
  sink.write("{\"buffered\":true}");
  obs::JsonlSink::flush_all();  // the atexit hook, called directly
  EXPECT_EQ(read_lines(path).size(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Torn-tail tolerance

/// A small governed run with telemetry, so the stream has real records.
void write_run_telemetry(const std::string& path) {
  const Trace trace = trace_of({job(0, 0, 2, 100), job(1, 0, 2, 100),
                                job(2, 0, 2, 100)},
                               /*capacity=*/4);
  auto scheduler = make_policy("LXF-BF");
  obs::Telemetry telemetry(std::make_unique<obs::JsonlSink>(path));
  SimConfig sim;
  sim.telemetry = &telemetry;
  simulate(trace, *scheduler, sim);
}

TEST(TelemetryReader, SkipsAndCountsATornFinalLine) {
  const std::string path = temp_path("sbs_torn.jsonl");
  write_run_telemetry(path);
  const obs::TelemetrySummary clean = obs::read_telemetry(path);
  ASSERT_EQ(clean.runs.size(), 1u);
  EXPECT_EQ(clean.torn_records, 0u);

  {  // a SIGKILLed writer leaves a half-record with no trailing newline
    std::ofstream out(path, std::ios::app);
    out << R"({"type":"decision","t":42,"queue)";
  }
  const obs::TelemetrySummary torn = obs::read_telemetry(path);
  EXPECT_EQ(torn.torn_records, 1u);
  ASSERT_EQ(torn.runs.size(), 1u);
  // The intact prefix is untouched by the torn tail.
  EXPECT_EQ(torn.runs[0].decisions, clean.runs[0].decisions);
  EXPECT_EQ(torn.runs[0].finishes, clean.runs[0].finishes);
  std::remove(path.c_str());
}

TEST(TelemetryReader, MalformedCompleteLinesStillThrow) {
  const std::string path = temp_path("sbs_malformed.jsonl");
  write_run_telemetry(path);
  {  // newline-terminated garbage is corruption, not a crash artifact
    std::ofstream out(path, std::ios::app);
    out << "{\"type\":\"decision\",\"t\":42,\"queue\n";
  }
  EXPECT_THROW(obs::read_telemetry(path), Error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint file format

CheckpointData sample_checkpoint() {
  CheckpointData data;
  data.id = resilience::checkpoint_id(400);
  data.parent = "ck-200";
  data.cli = {{"policy", "DDS/lxf/dynB"}, {"nodes", "500"}, {"seed", "42"}};
  sim::SimSnapshot& s = data.snapshot;
  s.now = 12345;
  s.events = 400;
  s.next_arrival = 37;
  s.next_fault = 3;
  s.used_nodes = 96;
  s.down_nodes = 4;
  s.last_event = 12000;
  s.queue_area = 1234.5;
  s.waiting = {{7, 3600}, {9, 100}};
  s.running = {{1, 11000, 13000}, {2, 11500, 12500}};
  s.completions = {{13000, 1, 0}, {12500, 2, 1}};
  s.attempts = {0, 1, 2, 0};
  s.outcomes = {{1, 11000, 13000, 0, 0, true}, {3, 500, 900, 1, 800, false}};
  s.decision_stats = {40, 12, 17, 123.25};
  s.fault_stats = {2, 1, 3, 2, 1, 0, 456.75, 92};
  s.scheduler_state = R"({"kind":"search","stats":{"decisions":40}})";
  return data;
}

TEST(Checkpoint, IdEncodesTheEventCount) {
  EXPECT_EQ(resilience::checkpoint_id(400), "ck-400");
  EXPECT_EQ(resilience::checkpoint_id(0), "ck-0");
}

TEST(Checkpoint, RoundTripsEveryField) {
  const std::string path = temp_path("sbs_ckpt_roundtrip.json");
  const CheckpointData data = sample_checkpoint();
  resilience::write_checkpoint(path, data);
  const CheckpointData back = resilience::read_checkpoint(path);

  EXPECT_EQ(back.version, sim::SimSnapshot::kVersion);
  EXPECT_EQ(back.id, "ck-400");
  EXPECT_EQ(back.parent, "ck-200");
  EXPECT_EQ(back.cli, data.cli);

  const sim::SimSnapshot& a = data.snapshot;
  const sim::SimSnapshot& b = back.snapshot;
  EXPECT_EQ(b.now, a.now);
  EXPECT_EQ(b.events, a.events);
  EXPECT_EQ(b.next_arrival, a.next_arrival);
  EXPECT_EQ(b.next_fault, a.next_fault);
  EXPECT_EQ(b.used_nodes, a.used_nodes);
  EXPECT_EQ(b.down_nodes, a.down_nodes);
  EXPECT_EQ(b.last_event, a.last_event);
  EXPECT_DOUBLE_EQ(b.queue_area, a.queue_area);
  ASSERT_EQ(b.waiting.size(), a.waiting.size());
  for (std::size_t i = 0; i < a.waiting.size(); ++i) {
    EXPECT_EQ(b.waiting[i].job_id, a.waiting[i].job_id);
    EXPECT_EQ(b.waiting[i].estimate, a.waiting[i].estimate);
  }
  ASSERT_EQ(b.running.size(), a.running.size());
  for (std::size_t i = 0; i < a.running.size(); ++i) {
    EXPECT_EQ(b.running[i].job_id, a.running[i].job_id);
    EXPECT_EQ(b.running[i].start, a.running[i].start);
    EXPECT_EQ(b.running[i].est_end, a.running[i].est_end);
  }
  ASSERT_EQ(b.completions.size(), a.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(b.completions[i].end, a.completions[i].end);
    EXPECT_EQ(b.completions[i].job_id, a.completions[i].job_id);
    EXPECT_EQ(b.completions[i].attempt, a.completions[i].attempt);
  }
  EXPECT_EQ(b.attempts, a.attempts);
  ASSERT_EQ(b.outcomes.size(), a.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(b.outcomes[i].job_id, a.outcomes[i].job_id);
    EXPECT_EQ(b.outcomes[i].start, a.outcomes[i].start);
    EXPECT_EQ(b.outcomes[i].end, a.outcomes[i].end);
    EXPECT_EQ(b.outcomes[i].requeue_count, a.outcomes[i].requeue_count);
    EXPECT_EQ(b.outcomes[i].lost_node_seconds, a.outcomes[i].lost_node_seconds);
    EXPECT_EQ(b.outcomes[i].completed, a.outcomes[i].completed);
  }
  EXPECT_EQ(b.decision_stats.decisions, a.decision_stats.decisions);
  EXPECT_EQ(b.decision_stats.with_10_plus, a.decision_stats.with_10_plus);
  EXPECT_EQ(b.decision_stats.max_waiting, a.decision_stats.max_waiting);
  EXPECT_DOUBLE_EQ(b.decision_stats.mean_waiting_sum,
                   a.decision_stats.mean_waiting_sum);
  EXPECT_EQ(b.fault_stats.node_failures, a.fault_stats.node_failures);
  EXPECT_EQ(b.fault_stats.jobs_killed, a.fault_stats.jobs_killed);
  EXPECT_EQ(b.fault_stats.jobs_requeued, a.fault_stats.jobs_requeued);
  EXPECT_DOUBLE_EQ(b.fault_stats.lost_node_seconds,
                   a.fault_stats.lost_node_seconds);
  EXPECT_EQ(b.fault_stats.min_capacity, a.fault_stats.min_capacity);
  EXPECT_EQ(b.scheduler_state, a.scheduler_state);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsForeignAndFutureFiles) {
  const std::string path = temp_path("sbs_ckpt_bad.json");
  {  // not a checkpoint at all
    std::ofstream out(path);
    out << "{\"format\":\"something-else\",\"version\":1}\n";
  }
  EXPECT_THROW(resilience::read_checkpoint(path), Error);
  {  // a snapshot version this build does not understand
    std::ofstream out(path);
    out << "{\"format\":\"sbs-checkpoint\",\"version\":999}\n";
  }
  EXPECT_THROW(resilience::read_checkpoint(path), Error);
  {  // truncated JSON (crash while writing a NON-atomic copy)
    std::ofstream out(path);
    out << "{\"format\":\"sbs-checkpoint\",\"ver";
  }
  EXPECT_THROW(resilience::read_checkpoint(path), Error);
  EXPECT_THROW(resilience::read_checkpoint(path + ".does-not-exist"), Error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Differential resume bit-identity

/// A queue that stays busy for a while: mixed widths/runtimes, enough
/// arrivals that decisions overlap and warm starts matter.
Trace busy_trace() {
  std::vector<Job> jobs;
  for (int i = 0; i < 36; ++i) {
    const int nodes = 1 + (i * 5) % 7;
    const Time runtime = 120 + (i * 37) % 400;
    jobs.push_back(job(i, i * 45, nodes, runtime, runtime * 2));
  }
  return trace_of(std::move(jobs), /*capacity=*/12);
}

void expect_identical(const SimResult& resumed, const SimResult& reference) {
  ASSERT_EQ(resumed.outcomes.size(), reference.outcomes.size());
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(reference.outcomes[i].job.id));
    EXPECT_EQ(resumed.outcomes[i].start, reference.outcomes[i].start);
    EXPECT_EQ(resumed.outcomes[i].end, reference.outcomes[i].end);
    EXPECT_EQ(resumed.outcomes[i].requeue_count,
              reference.outcomes[i].requeue_count);
    EXPECT_EQ(resumed.outcomes[i].lost_node_seconds,
              reference.outcomes[i].lost_node_seconds);
    EXPECT_EQ(resumed.outcomes[i].completed, reference.outcomes[i].completed);
  }
  EXPECT_EQ(resumed.sched_stats.decisions, reference.sched_stats.decisions);
  EXPECT_EQ(resumed.sched_stats.nodes_visited,
            reference.sched_stats.nodes_visited);
  EXPECT_DOUBLE_EQ(resumed.avg_queue_length, reference.avg_queue_length);
  EXPECT_EQ(resumed.decision_stats.decisions,
            reference.decision_stats.decisions);
  EXPECT_EQ(resumed.fault_stats.jobs_killed, reference.fault_stats.jobs_killed);
  EXPECT_EQ(resumed.fault_stats.jobs_requeued,
            reference.fault_stats.jobs_requeued);
}

/// The full uninterrupted-vs-resumed differential, routed through the
/// on-disk checkpoint format: run once to the end; run again capturing a
/// mid-run checkpoint to a real file; build a THIRD scheduler, resume it
/// from the file, and require bit-identical results. `make_scheduler` must
/// return an identically configured fresh instance each call.
template <typename MakeScheduler>
void run_resume_differential(const Trace& trace, MakeScheduler make_scheduler,
                             SimConfig base, const std::string& tag) {
  auto reference_sched = make_scheduler();
  const SimResult reference = simulate(trace, *reference_sched, base);

  const std::string path = temp_path("sbs_resume_" + tag + ".json");
  SimConfig writing = base;
  writing.checkpoint_every = 20;
  std::uint64_t snapshots = 0;
  writing.checkpoint_sink = [&](const sim::SimSnapshot& snap) {
    // Keep the first mid-run capture: resuming from it replays the longest
    // tail, which is the harshest version of the differential.
    ++snapshots;
    if (snapshots > 1) return;
    CheckpointData data;
    data.id = resilience::checkpoint_id(snap.events);
    data.cli = {{"tag", tag}};
    data.snapshot = snap;
    resilience::write_checkpoint(path, data);
  };
  auto writer_sched = make_scheduler();
  const SimResult full = simulate(trace, *writer_sched, writing);
  expect_identical(full, reference);  // checkpointing itself must not perturb
  ASSERT_GE(snapshots, 1u) << "trace too small for checkpoint_every=20";

  const CheckpointData data = resilience::read_checkpoint(path);
  ASSERT_GT(data.snapshot.events, 0u);
  ASSERT_LT(data.snapshot.next_arrival, trace.jobs.size())
      << "checkpoint fell after the last arrival; weaken checkpoint_every";
  SimConfig resuming = base;
  resuming.resume = &data.snapshot;
  auto resumed_sched = make_scheduler();
  const SimResult resumed = simulate(trace, *resumed_sched, resuming);
  expect_identical(resumed, reference);
  std::remove(path.c_str());
}

TEST(ResumeDifferential, BackfillBaseline) {
  run_resume_differential(
      busy_trace(), [] { return make_policy("LXF-BF"); }, SimConfig{},
      "backfill");
}

TEST(ResumeDifferential, SearchWithCacheWarmStartAndThreads) {
  run_resume_differential(
      busy_trace(),
      [] {
        return make_policy("DDS/lxf/dynB", /*node_limit=*/400,
                           /*deadline_ms=*/-1.0, /*threads=*/2,
                           /*cache=*/true, /*warm_start=*/true);
      },
      SimConfig{}, "search");
}

TEST(ResumeDifferential, SearchUnderFaultsWithRequeue) {
  const Trace trace = busy_trace();
  FaultSpec spec;
  spec.node_mtbf = 900;
  spec.node_mttr = 400;
  spec.min_block = 1;
  spec.max_block = 3;
  spec.job_kill_mtbf = 1500;
  spec.seed = 7;
  const FaultInjector faults = FaultInjector::from_spec(
      spec, trace.window_begin, trace.window_end, trace.capacity);
  SimConfig base;
  base.faults = &faults;
  run_resume_differential(
      trace,
      [] {
        return make_policy("DDS/lxf/dynB", /*node_limit=*/300,
                           /*deadline_ms=*/-1.0, /*threads=*/2,
                           /*cache=*/true, /*warm_start=*/true);
      },
      base, "faults");
}

TEST(ResumeDifferential, GovernedLadderResumesMidDegradation) {
  // Heavy burst up front so the breaker trips before the first checkpoint;
  // the resumed run must rejoin at the same ladder position (the breaker,
  // monitor, and every rung's warm state travel in scheduler_state).
  std::vector<Job> jobs;
  for (int i = 0; i < 16; ++i) jobs.push_back(job(i, 0, 4, 150));
  for (int i = 16; i < 28; ++i)
    jobs.push_back(job(i, 2000 + (i - 16) * 400, 2, 200));
  const Trace trace = trace_of(std::move(jobs), /*capacity=*/8);

  GovernorConfig gov;
  gov.health = {};
  gov.health.alpha = 1.0;
  gov.health.queue_high = 8.0;
  gov.trip_decisions = 2;
  gov.probe_after = 3;
  gov.promote_probes = 1;
  SearchSchedulerConfig base_cfg;
  base_cfg.search.node_limit = 200;
  run_resume_differential(
      trace,
      [&] { return std::make_unique<GovernedScheduler>(base_cfg, gov); },
      SimConfig{}, "governed");
}

TEST(GovernedScheduler, RestoreRejectsADifferentConfiguration) {
  GovernorConfig gov;
  gov.health.queue_high = 8.0;
  SearchSchedulerConfig base_cfg;
  GovernedScheduler original(base_cfg, gov);
  const std::string state = original.save_state();

  GovernorConfig other = gov;
  other.trip_decisions = 99;  // a different breaker is a different policy
  GovernedScheduler mismatched(base_cfg, other);
  EXPECT_THROW(mismatched.restore_state(state), Error);
}

// ---------------------------------------------------------------------------
// Federation checkpoint: on-disk format + mid-run resume bit-identity

TEST(FederationCheckpoint, RoundTripsAndRejectsTheSingleSimFormat) {
  const std::string path = temp_path("sbs_fed_ckpt.json");
  resilience::FederationCheckpointData data;
  data.id = "ck-12";
  data.parent = "ck-6";
  data.cli = {{"clusters", "8,4"}, {"meta", "rr"}};
  sim::FederationSnapshot& f = data.snapshot;
  f.fed_events = 12;
  f.next_arrival = 5;
  f.migrations = 2;
  f.owner = {0, 1, -1, 0};
  f.demand_ewma = {123.5, 0.25};
  f.routed = {3, 2};
  f.migrations_in = {0, 2};
  f.migrations_out = {2, 0};
  f.meta_state = R"({"cursor":1})";
  f.members = {sample_checkpoint().snapshot, sim::SimSnapshot{}};

  resilience::write_federation_checkpoint(path, data);
  const resilience::FederationCheckpointData back =
      resilience::read_federation_checkpoint(path);
  EXPECT_EQ(back.version, sim::FederationSnapshot::kVersion);
  EXPECT_EQ(back.id, data.id);
  EXPECT_EQ(back.parent, data.parent);
  EXPECT_EQ(back.cli, data.cli);
  EXPECT_EQ(back.snapshot.fed_events, f.fed_events);
  EXPECT_EQ(back.snapshot.next_arrival, f.next_arrival);
  EXPECT_EQ(back.snapshot.migrations, f.migrations);
  EXPECT_EQ(back.snapshot.owner, f.owner);
  EXPECT_EQ(back.snapshot.demand_ewma, f.demand_ewma);
  EXPECT_EQ(back.snapshot.routed, f.routed);
  EXPECT_EQ(back.snapshot.migrations_in, f.migrations_in);
  EXPECT_EQ(back.snapshot.migrations_out, f.migrations_out);
  EXPECT_EQ(back.snapshot.meta_state, f.meta_state);
  ASSERT_EQ(back.snapshot.members.size(), 2u);
  EXPECT_EQ(back.snapshot.members[0].now, f.members[0].now);
  EXPECT_EQ(back.snapshot.members[0].scheduler_state,
            f.members[0].scheduler_state);

  // The two formats are mutually exclusive: a federation reader must not
  // accept a single-simulator checkpoint, and vice versa.
  const std::string single = temp_path("sbs_fed_ckpt_single.json");
  resilience::write_checkpoint(single, sample_checkpoint());
  EXPECT_THROW(resilience::read_federation_checkpoint(single), Error);
  EXPECT_THROW(resilience::read_checkpoint(path), Error);
  std::remove(path.c_str());
  std::remove(single.c_str());
}

void expect_fed_identical(const fed::FederationResult& resumed,
                          const fed::FederationResult& reference) {
  ASSERT_EQ(resumed.outcomes.size(), reference.outcomes.size());
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(reference.outcomes[i].job.id));
    EXPECT_EQ(resumed.outcomes[i].start, reference.outcomes[i].start);
    EXPECT_EQ(resumed.outcomes[i].end, reference.outcomes[i].end);
    EXPECT_EQ(resumed.outcomes[i].requeue_count,
              reference.outcomes[i].requeue_count);
    EXPECT_EQ(resumed.outcomes[i].completed, reference.outcomes[i].completed);
  }
  EXPECT_EQ(resumed.owner, reference.owner);
  EXPECT_EQ(resumed.migrations, reference.migrations);
  EXPECT_DOUBLE_EQ(resumed.avg_queue_length, reference.avg_queue_length);
  ASSERT_EQ(resumed.members.size(), reference.members.size());
  for (std::size_t i = 0; i < reference.members.size(); ++i) {
    EXPECT_EQ(resumed.members[i].routed, reference.members[i].routed);
    EXPECT_EQ(resumed.members[i].migrations_in,
              reference.members[i].migrations_in);
    EXPECT_EQ(resumed.members[i].migrations_out,
              reference.members[i].migrations_out);
    EXPECT_EQ(resumed.members[i].sim.sched_stats.decisions,
              reference.members[i].sim.sched_stats.decisions);
  }
}

// The federation version of the resume differential, routed through the
// on-disk format: a 2-cluster run with a mid-schedule fault (so the
// checkpoint can land with a migration already behind it), cut at the
// first snapshot and resumed with fresh schedulers and a fresh
// meta-scheduler, must be bit-identical to the uninterrupted run.
TEST(FederationCheckpoint, MidRunResumeIsBitIdentical) {
  const Trace trace = busy_trace();  // capacity 12; members 12 + 6
  const FaultInjector faults = FaultInjector::from_events({
      {/*time=*/300, FaultKind::NodeDown, /*nodes=*/8},
      {/*time=*/1400, FaultKind::NodeUp, /*nodes=*/8},
  });
  const auto factory =
      make_policy_factory("DDS/lxf/dynB", /*node_limit=*/300,
                          /*deadline_ms=*/-1.0, /*threads=*/0, /*cache=*/true,
                          /*warm_start=*/true);
  fed::FederationConfig base;
  base.members = {{"a", 12, &faults}, {"b", 6, nullptr}};

  auto run = [&](const fed::FederationConfig& fc, const std::string& meta) {
    const auto m = fed::make_meta(meta);
    fed::Federation federation(trace, factory, *m, fc);
    return federation.run();
  };
  const fed::FederationResult reference = run(base, "rr");
  EXPECT_GE(reference.migrations, 1u)
      << "the fault must strand at least one job for this test to bite";

  const std::string path = temp_path("sbs_fed_resume.json");
  fed::FederationConfig writing = base;
  writing.checkpoint_every = 10;
  std::uint64_t snapshots = 0;
  writing.checkpoint_sink = [&](const sim::FederationSnapshot& snap) {
    ++snapshots;
    if (snapshots > 1) return;  // keep the earliest: longest resumed tail
    resilience::FederationCheckpointData data;
    data.id = resilience::checkpoint_id(snap.fed_events);
    data.cli = {{"meta", "rr"}};
    data.snapshot = snap;
    resilience::write_federation_checkpoint(path, data);
  };
  const fed::FederationResult full = run(writing, "rr");
  expect_fed_identical(full, reference);  // checkpointing must not perturb
  ASSERT_GE(snapshots, 1u) << "trace too small for checkpoint_every=10";

  const resilience::FederationCheckpointData data =
      resilience::read_federation_checkpoint(path);
  ASSERT_GT(data.snapshot.fed_events, 0u);
  ASSERT_LT(data.snapshot.next_arrival, trace.jobs.size())
      << "checkpoint fell after the last arrival; weaken checkpoint_every";
  fed::FederationConfig resuming = base;
  resuming.resume = &data.snapshot;
  const fed::FederationResult resumed = run(resuming, "rr");
  expect_fed_identical(resumed, reference);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Graceful interrupt

TEST(Interrupt, FlagStopsTheRunViaTheErrorPath) {
  const Trace trace = busy_trace();
  auto scheduler = make_policy("LXF-BF");
  std::atomic<bool> stop{true};  // raised before the first event
  SimConfig sim;
  sim.interrupt = &stop;
  EXPECT_THROW(simulate(trace, *scheduler, sim), Error);
}

}  // namespace
}  // namespace sbs
