#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "test_support.hpp"
#include "util/error.hpp"

namespace sbs {
namespace {

using test::check_feasible;
using test::job;
using test::trace_of;

/// Scriptable scheduler for exercising the simulator contract.
class LambdaScheduler : public Scheduler {
 public:
  using Fn = std::function<std::vector<int>(const SchedulerState&)>;
  explicit LambdaScheduler(Fn fn) : fn_(std::move(fn)) {}
  std::vector<int> select_jobs(const SchedulerState& state) override {
    ++calls_;
    return fn_(state);
  }
  std::string name() const override { return "lambda"; }
  int calls() const { return calls_; }

 private:
  Fn fn_;
  int calls_ = 0;
};

/// Greedy FCFS-no-backfill: start queue-order jobs while they fit now.
std::vector<int> greedy_fcfs(const SchedulerState& state) {
  std::vector<int> out;
  int free = state.free_nodes;
  for (const auto& w : state.waiting) {
    if (w.job->nodes <= free) {
      free -= w.job->nodes;
      out.push_back(w.job->id);
    } else {
      break;
    }
  }
  return out;
}

TEST(Simulator, SingleJobRunsImmediately) {
  const Trace t = trace_of({job(0, 10, 2, 100)}, 4);
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[0].start, 10);
  EXPECT_EQ(r.outcomes[0].end, 110);
  EXPECT_EQ(r.outcomes[0].wait(), 0);
}

TEST(Simulator, SecondJobWaitsForFirst) {
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 10, 4, 50)}, 4);
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[0].start, 0);
  EXPECT_EQ(r.outcomes[1].start, 100);  // starts at the completion event
  EXPECT_EQ(r.outcomes[1].wait(), 90);
  check_feasible(r.outcomes, 4);
}

TEST(Simulator, SimultaneousArrivalsBatchedIntoOneDecision) {
  const Trace t = trace_of({job(0, 5, 1, 10), job(1, 5, 1, 10)}, 4);
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(s.calls(), 1);  // one event, both jobs arrive and start together
  EXPECT_EQ(r.outcomes[0].start, 5);
  EXPECT_EQ(r.outcomes[1].start, 5);
}

TEST(Simulator, WaitingListIsFcfsOrdered) {
  const Trace t = trace_of(
      {job(0, 0, 4, 100), job(1, 30, 1, 10), job(2, 20, 1, 10)}, 4);
  bool checked = false;
  LambdaScheduler s([&](const SchedulerState& state) {
    if (state.now == 100) {
      // Both queued jobs must appear in submit order.
      EXPECT_EQ(state.waiting.size(), 2u);
      EXPECT_LT(state.waiting[0].job->submit, state.waiting[1].job->submit);
      checked = true;
    }
    return greedy_fcfs(state);
  });
  simulate(t, s);
  EXPECT_TRUE(checked);
}

TEST(Simulator, OverCommitDetected) {
  const Trace t = trace_of({job(0, 0, 3, 10), job(1, 0, 3, 10)}, 4);
  LambdaScheduler s([](const SchedulerState& state) {
    std::vector<int> all;
    for (const auto& w : state.waiting) all.push_back(w.job->id);
    return all;  // 6 nodes on a 4-node machine
  });
  EXPECT_THROW(simulate(t, s), Error);
}

TEST(Simulator, UnknownJobDetected) {
  const Trace t = trace_of({job(0, 0, 1, 10)}, 4);
  LambdaScheduler s([](const SchedulerState&) { return std::vector<int>{99}; });
  EXPECT_THROW(simulate(t, s), Error);
}

TEST(Simulator, StallOnIdleMachineDetected) {
  const Trace t = trace_of({job(0, 0, 1, 10)}, 4);
  LambdaScheduler s([](const SchedulerState&) { return std::vector<int>{}; });
  EXPECT_THROW(simulate(t, s), Error);
}

TEST(Simulator, EstimatesAreActualRuntimeByDefault) {
  const Trace t = trace_of({job(0, 0, 1, 100, 500)}, 4);
  LambdaScheduler s([&](const SchedulerState& state) {
    EXPECT_EQ(state.waiting[0].estimate, 100);
    return greedy_fcfs(state);
  });
  simulate(t, s);
}

TEST(Simulator, RequestedRuntimeModeUsesR) {
  const Trace t = trace_of({job(0, 0, 1, 100, 500)}, 4);
  SimConfig cfg;
  cfg.use_requested_runtime = true;
  LambdaScheduler s([&](const SchedulerState& state) {
    EXPECT_EQ(state.waiting[0].estimate, 500);
    return greedy_fcfs(state);
  });
  simulate(t, s, cfg);
}

TEST(Simulator, RunningJobsExposeEstimatedEnd) {
  const Trace t = trace_of({job(0, 0, 1, 100, 500), job(1, 10, 4, 10)}, 4);
  SimConfig cfg;
  cfg.use_requested_runtime = true;
  bool checked = false;
  LambdaScheduler s([&](const SchedulerState& state) {
    if (state.now == 10) {
      EXPECT_EQ(state.running.size(), 1u);
      EXPECT_EQ(state.running[0].est_end, 500);  // planner view, not actual
      checked = true;
    }
    return greedy_fcfs(state);
  });
  const SimResult r = simulate(t, s, cfg);
  EXPECT_TRUE(checked);
  // The machine still frees nodes at the ACTUAL end (t=100).
  EXPECT_EQ(r.outcomes[1].start, 100);
}

TEST(Simulator, FreeNodesReflectsRunningJobs) {
  const Trace t = trace_of({job(0, 0, 3, 100), job(1, 50, 1, 10)}, 4);
  bool checked = false;
  LambdaScheduler s([&](const SchedulerState& state) {
    if (state.now == 50) {
      EXPECT_EQ(state.free_nodes, 1);
      checked = true;
    }
    return greedy_fcfs(state);
  });
  simulate(t, s);
  EXPECT_TRUE(checked);
}

TEST(Simulator, AvgQueueLengthTimeWeighted) {
  // One job occupies the machine over [0, 100); a second waits [0, 100) —
  // window is [0, 200): queue holds 1 job for half the window.
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 0, 4, 100)}, 4, 0, 200);
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_NEAR(r.avg_queue_length, 0.5, 1e-9);
}

TEST(Simulator, OutcomesIndexedByJobId) {
  const Trace t = trace_of({job(0, 0, 1, 10), job(1, 1, 1, 10), job(2, 2, 1, 10)}, 4);
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s);
  for (std::size_t i = 0; i < r.outcomes.size(); ++i)
    EXPECT_EQ(r.outcomes[i].job.id, static_cast<int>(i));
}

TEST(Simulator, KillAtRequestTruncatesOverrunners) {
  // Job claims 100 s but would run 500 s; with kill semantics it occupies
  // the machine for exactly 100 s and the next job starts then.
  Trace t = trace_of({job(0, 0, 4, 500, 0), job(1, 10, 4, 50)}, 4);
  t.jobs[0].requested = 100;  // below runtime — only legal via direct edit
  SimConfig cfg;
  cfg.kill_at_request = true;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s, cfg);
  EXPECT_EQ(r.outcomes[0].end, 100);
  EXPECT_EQ(r.outcomes[1].start, 100);
}

TEST(Simulator, NoKillByDefault) {
  Trace t = trace_of({job(0, 0, 4, 500, 0), job(1, 10, 4, 50)}, 4);
  t.jobs[0].requested = 100;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[0].end, 500);
  EXPECT_EQ(r.outcomes[1].start, 500);
}

TEST(Simulator, KillAtRequestHarmlessWhenRequestsAreSane) {
  const Trace t = trace_of({job(0, 0, 2, 100, 300), job(1, 5, 2, 50, 60)}, 4);
  SimConfig cfg;
  cfg.kill_at_request = true;
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s, cfg);
  EXPECT_EQ(r.outcomes[0].end - r.outcomes[0].start, 100);
  EXPECT_EQ(r.outcomes[1].end - r.outcomes[1].start, 50);
}

TEST(Simulator, DecisionStatsCountQueueDepths) {
  // Three single-node jobs on a 1-node machine: decisions at t=0 (1
  // waiting), t=0 arrivals batched... build explicit staggered arrivals.
  const Trace t = trace_of({job(0, 0, 1, 100), job(1, 10, 1, 100),
                            job(2, 20, 1, 100)},
                           1);
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s);
  const DecisionStats& d = r.decision_stats;
  // Decisions: t=0 (q=1), t=10 (q=1), t=20 (q=2), t=100 (q=2), t=200 (q=1).
  EXPECT_EQ(d.decisions, 5u);
  EXPECT_EQ(d.max_waiting, 2u);
  EXPECT_DOUBLE_EQ(d.mean_waiting, (1 + 1 + 2 + 2 + 1) / 5.0);
  EXPECT_EQ(d.with_10_plus, 0u);
  EXPECT_DOUBLE_EQ(d.fraction_10_plus(), 0.0);
}

TEST(Simulator, DecisionStatsSeeBigQueues) {
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back(job(i, 0, 1, 100));
  const Trace t = trace_of(std::move(jobs), 1);
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_GE(r.decision_stats.max_waiting, 12u);
  EXPECT_GE(r.decision_stats.with_10_plus, 1u);
}

TEST(ProfileFromRunning, ClampsPastEstimatedEndsToNowPlusOne) {
  // Estimates can be wrong: a job may still be running past its estimated
  // end. Its profile entry is clamped to [now, now + 1) — "finishing
  // imminently" — instead of producing a zero/negative-length interval.
  const Job a = test::job(0, 0, 4, 1000);
  const Job b = test::job(1, 0, 2, 1000);
  const std::vector<RunningJob> running = {
      RunningJob{&a, /*start=*/0, /*est_end=*/50},    // past: now is 100
      RunningJob{&b, /*start=*/0, /*est_end=*/150}};  // still in the future
  const ResourceProfile p = profile_from_running(8, /*now=*/100, running);
  EXPECT_EQ(p.free_at(100), 8 - 4 - 2);  // overdue job still holds nodes now
  EXPECT_EQ(p.free_at(101), 8 - 2);      // ...but is expected gone by now+1
  EXPECT_EQ(p.free_at(150), 8);
}

TEST(Simulator, NonPreemptive) {
  // A wide job arrives while a narrow one runs; the narrow one is never
  // interrupted — the wide job waits for the full remaining runtime.
  const Trace t = trace_of({job(0, 0, 1, 1000), job(1, 1, 4, 10)}, 4);
  LambdaScheduler s(greedy_fcfs);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[0].end, 1000);
  EXPECT_EQ(r.outcomes[1].start, 1000);
}

}  // namespace
}  // namespace sbs
