#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sbs {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitPropagatesExceptionViaFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("nope"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, ManySmallTasksSum) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.load(), 499500);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&done] { done++; }).wait();
  }
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace sbs
