// Federation behavior: deterministic routing under every meta-scheduler,
// cross-cluster migration that preserves job identity and historical FCFS
// order, and a fuzz loop (SBS_FUZZ_ITERS scales it up in scheduled CI)
// proving no job is ever lost or duplicated under randomized member
// layouts, workloads, and per-member fault schedules.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exp/policy_factory.hpp"
#include "fed/federation.hpp"
#include "fed/meta_scheduler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "sim/faults.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace sbs {
namespace {

using test::job;
using test::trace_of;

std::uint64_t fuzz_iters() {
  if (const char* env = std::getenv("SBS_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 8;  // tier-1 default: seconds, not minutes
}

class CaptureSink final : public obs::TraceSink {
 public:
  explicit CaptureSink(std::vector<std::string>& lines) : lines_(lines) {}
  void write(std::string_view json_line) override {
    lines_.emplace_back(json_line);
  }

 private:
  std::vector<std::string>& lines_;
};

fed::FederationResult run_federation(const Trace& trace,
                                     std::vector<fed::MemberSpec> members,
                                     const std::string& policy,
                                     const std::string& meta_spec,
                                     obs::Telemetry* tel = nullptr,
                                     std::size_t node_limit = 100) {
  fed::FederationConfig fc;
  fc.members = std::move(members);
  fc.telemetry = tel;
  const auto factory = make_policy_factory(policy, node_limit);
  const auto meta = fed::make_meta(meta_spec);
  fed::Federation federation(trace, factory, *meta, fc);
  return federation.run();
}

// A mixed workload over three clusters: every meta policy must route it
// identically across repeated runs (same trace, same config, fixed seed).
TEST(Federation, RoutingIsDeterministic) {
  GeneratorConfig cfg;
  cfg.job_scale = 0.03;
  cfg.seed = 42;
  const Trace trace = generate_month("7/03", cfg);
  const std::vector<fed::MemberSpec> members = {
      {"a", trace.capacity, nullptr},
      {"b", trace.capacity / 2, nullptr},
      {"c", trace.capacity / 2, nullptr},
  };
  for (const char* meta : {"rr", "least-loaded", "best-fit"}) {
    SCOPED_TRACE(meta);
    const fed::FederationResult first =
        run_federation(trace, members, "DDS/lxf/dynB", meta);
    const fed::FederationResult second =
        run_federation(trace, members, "DDS/lxf/dynB", meta);
    ASSERT_EQ(first.owner, second.owner);
    ASSERT_EQ(first.outcomes.size(), second.outcomes.size());
    for (std::size_t i = 0; i < first.outcomes.size(); ++i) {
      EXPECT_EQ(first.outcomes[i].start, second.outcomes[i].start);
      EXPECT_EQ(first.outcomes[i].end, second.outcomes[i].end);
    }
    std::uint64_t routed = 0;
    for (const auto& m : first.members) routed += m.routed;
    EXPECT_EQ(routed, trace.jobs.size());
  }
}

// Round-robin over identical members spreads an identical-job stream
// evenly; any policy must send a job wider than all but one member to the
// only member that can ever host it.
TEST(Federation, RoutingRespectsWidthAndSpreads) {
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i)
    jobs.push_back(job(i, i * 10, 1, 500));
  const Trace narrow = trace_of(jobs, 8);
  const std::vector<fed::MemberSpec> equal = {
      {"a", 8, nullptr}, {"b", 8, nullptr}, {"c", 8, nullptr}};
  const fed::FederationResult rr =
      run_federation(narrow, equal, "FCFS-BF", "rr");
  for (const auto& m : rr.members) EXPECT_EQ(m.routed, 4u);

  std::vector<Job> wide;
  wide.push_back(job(0, 0, 8, 500));
  wide.push_back(job(1, 10, 2, 500));
  wide.push_back(job(2, 20, 8, 500));
  const Trace wide_trace = trace_of(wide, 8);
  for (const char* meta : {"rr", "least-loaded", "best-fit"}) {
    SCOPED_TRACE(meta);
    const fed::FederationResult fr = run_federation(
        wide_trace, {{"small", 2, nullptr}, {"big", 8, nullptr}}, "FCFS-BF",
        meta);
    EXPECT_EQ(fr.owner[0], 1);  // 8-node jobs can only ever fit "big"
    EXPECT_EQ(fr.owner[2], 1);
    EXPECT_TRUE(fr.outcomes[1].completed);
  }
}

// A node failure strands jobs wider than the degraded member: they migrate
// with identity intact (same id, one submit record, started on the target)
// and re-enter the target queue at their historical FCFS position — the
// killed-and-requeued j0 (submit 0) starts before the never-started j2
// (submit 20), which starts before the target's own j3 (submit 30).
TEST(Federation, MigrationPreservesIdentityAndRequeueOrder) {
  std::vector<Job> jobs = {
      job(0, 0, 4, 1000),
      job(1, 10, 4, 1000),
      job(2, 20, 4, 1000),
      job(3, 30, 4, 1000),
  };
  const Trace trace = trace_of(jobs, 4, 0, 20'000);
  const FaultInjector c0_faults = FaultInjector::from_events({
      {/*time=*/50, FaultKind::NodeDown, /*nodes=*/2},
      {/*time=*/15'000, FaultKind::NodeUp, /*nodes=*/2},
  });
  std::vector<std::string> lines;
  obs::Telemetry tel(std::make_unique<CaptureSink>(lines));
  // Round-robin routes j0, j2 to c0 and j1, j3 to c1.
  const fed::FederationResult fr = run_federation(
      trace, {{"c0", 4, &c0_faults}, {"c1", 4, nullptr}}, "FCFS-BF", "rr",
      &tel);
  tel.flush();

  EXPECT_EQ(fr.migrations, 2u);  // j0 (killed + requeued) and j2 (waiting)
  EXPECT_EQ(fr.owner, (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(fr.members[0].migrations_out, 2u);
  EXPECT_EQ(fr.members[1].migrations_in, 2u);
  for (const JobOutcome& o : fr.outcomes) EXPECT_TRUE(o.completed);
  EXPECT_EQ(fr.outcomes[0].requeue_count, 1);

  // c1 serializes the 4-node jobs; FCFS order by original submit times.
  EXPECT_EQ(fr.outcomes[1].start, 10);
  EXPECT_EQ(fr.outcomes[0].start, 1010);
  EXPECT_EQ(fr.outcomes[2].start, 2010);
  EXPECT_EQ(fr.outcomes[3].start, 3010);

  // Stream-level identity: one submit per job (migration re-injection is
  // not a resubmission), migrate records name the jobs, and after j0's
  // doomed first start on c0 every start happens on the target cluster.
  int submits = 0, migrates = 0, starts_c0 = 0, starts_c1 = 0;
  for (const std::string& line : lines) {
    if (line.find("\"type\":\"submit\"") != std::string::npos) ++submits;
    if (line.find("\"type\":\"migrate\"") != std::string::npos) {
      ++migrates;
      EXPECT_NE(line.find("\"from\":0"), std::string::npos);
      EXPECT_NE(line.find("\"to\":1"), std::string::npos);
    }
    if (line.find("\"type\":\"start\"") != std::string::npos) {
      if (line.find("\"cluster\":0") != std::string::npos) ++starts_c0;
      if (line.find("\"cluster\":1") != std::string::npos) ++starts_c1;
    }
  }
  EXPECT_EQ(submits, 4);
  EXPECT_EQ(migrates, 2);
  EXPECT_EQ(starts_c0, 1);  // j0's killed first attempt
  EXPECT_EQ(starts_c1, 4);  // j1, then the serialized j0, j2, j3
}

// Randomized member layouts, workloads, and per-member fault schedules:
// whatever happens, every job is routed exactly once, ends exactly once
// (completed or parked), the per-member ledgers balance, and the final
// placements respect every member's physical capacity.
TEST(Federation, FuzzNoJobLostOrDuplicated) {
  const std::uint64_t iters = fuzz_iters();
  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = 0xfed0 + iter * 7919;
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);

    const std::size_t n_members = static_cast<std::size_t>(
        rng.uniform_int(2, 4));
    std::vector<fed::MemberSpec> members;
    int widest = 0;
    for (std::size_t i = 0; i < n_members; ++i) {
      const int nodes = static_cast<int>(rng.uniform_int(4, 64));
      widest = std::max(widest, nodes);
      members.push_back({"m" + std::to_string(i), nodes, nullptr});
    }

    std::vector<Job> jobs;
    const std::size_t count =
        static_cast<std::size_t>(rng.uniform_int(20, 60));
    Time submit = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (rng.bernoulli(0.7))
        submit += static_cast<Time>(rng.uniform_int(0, kHour));
      const int nodes = static_cast<int>(rng.uniform_int(1, widest));
      const Time runtime = static_cast<Time>(rng.uniform_int(60, 6 * kHour));
      jobs.push_back(job(static_cast<int>(i), submit, nodes, runtime));
    }
    const Trace trace = trace_of(std::move(jobs), widest);

    std::vector<std::unique_ptr<FaultInjector>> injectors;
    for (std::size_t i = 0; i < n_members; ++i) {
      if (!rng.bernoulli(0.6)) continue;
      FaultSpec fs;
      fs.node_mtbf = 12 * kHour;
      fs.node_mttr = 2 * kHour;
      fs.min_block = 1;
      fs.max_block = 2;
      fs.seed = seed + i;
      injectors.push_back(std::make_unique<FaultInjector>(
          FaultInjector::from_spec(fs, trace.window_begin, trace.window_end,
                                   members[i].nodes)));
      members[i].faults = injectors.back().get();
    }

    const char* metas[] = {"rr", "least-loaded", "best-fit"};
    const char* policies[] = {"FCFS-BF", "DDS/lxf/dynB"};
    const fed::FederationResult fr = run_federation(
        trace, members, policies[iter % 2], metas[iter % 3]);

    ASSERT_EQ(fr.outcomes.size(), count);
    ASSERT_EQ(fr.owner.size(), count);
    std::uint64_t routed = 0, migr_in = 0, migr_out = 0;
    std::vector<std::uint64_t> owned(n_members, 0);
    for (const int o : fr.owner) {
      ASSERT_GE(o, 0);
      ASSERT_LT(static_cast<std::size_t>(o), n_members);
      ++owned[static_cast<std::size_t>(o)];
    }
    for (std::size_t i = 0; i < n_members; ++i) {
      const fed::MemberResult& m = fr.members[i];
      routed += m.routed;
      migr_in += m.migrations_in;
      migr_out += m.migrations_out;
      // Routing ledger: initial routings plus migrations in minus out is
      // exactly the set of jobs this member finally owned.
      EXPECT_EQ(m.routed + m.migrations_in - m.migrations_out, owned[i]);
      // Final placements respect the member's physical machine.
      std::vector<JobOutcome> completed;
      for (std::size_t j = 0; j < count; ++j)
        if (fr.owner[j] == static_cast<int>(i) && fr.outcomes[j].completed)
          completed.push_back(fr.outcomes[j]);
      EXPECT_NO_THROW(test::check_feasible(completed, m.capacity));
    }
    EXPECT_EQ(routed, count);
    EXPECT_EQ(migr_in, fr.migrations);
    EXPECT_EQ(migr_out, fr.migrations);
    // Every job ends exactly one way: completed, or parked (never started)
    // with its outcome pinned at the submit time.
    for (std::size_t j = 0; j < count; ++j) {
      const JobOutcome& o = fr.outcomes[j];
      if (!o.completed) {
        EXPECT_EQ(o.start, o.end) << "job " << j << " half-ran";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// --clusters spec parsing: every malformed operator input must surface as
// a UsageError (the CLI prints usage and exits 2), never a crash or a
// silently odd federation.

TEST(ClusterSpecParse, AcceptsNamedAndAnonymousMembers) {
  const auto mixed = fed::parse_cluster_spec("left:64,32,right:16");
  ASSERT_EQ(mixed.size(), 3u);
  EXPECT_EQ(mixed[0].name, "left");
  EXPECT_EQ(mixed[0].nodes, 64);
  EXPECT_EQ(mixed[1].name, "");  // defaults to "c1" downstream
  EXPECT_EQ(mixed[1].nodes, 32);
  EXPECT_EQ(mixed[2].name, "right");
  EXPECT_EQ(mixed[2].nodes, 16);
}

TEST(ClusterSpecParse, RejectsMalformedSpecsAsUsageErrors) {
  EXPECT_THROW(fed::parse_cluster_spec(""), UsageError);
  EXPECT_THROW(fed::parse_cluster_spec("a:0"), UsageError);      // zero nodes
  EXPECT_THROW(fed::parse_cluster_spec("a:-4"), UsageError);     // negative
  EXPECT_THROW(fed::parse_cluster_spec("a:xyz"), UsageError);    // not a number
  EXPECT_THROW(fed::parse_cluster_spec("a:"), UsageError);       // no count
  EXPECT_THROW(fed::parse_cluster_spec("64,"), UsageError);      // empty token
  EXPECT_THROW(fed::parse_cluster_spec("64,,32"), UsageError);   // empty token
  EXPECT_THROW(fed::parse_cluster_spec("a:8,a:16"), UsageError); // dup name
  // A given name colliding with another member's default "c<index>" would
  // merge their report rows; also a UsageError.
  EXPECT_THROW(fed::parse_cluster_spec("8,c0:16"), UsageError);
}

TEST(ClusterSpecParse, RejectsAbsurdMemberCounts) {
  std::string spec = "4";
  for (int i = 1; i < 1025; ++i) spec += ",4";
  EXPECT_THROW(fed::parse_cluster_spec(spec), UsageError);
}

}  // namespace
}  // namespace sbs
