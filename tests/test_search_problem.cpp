#include "core/search_problem.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sbs {
namespace {

using test::job;

TEST(SearchProblem, FromStateSnapshotsQueueAndProfile) {
  const Job a = job(0, -2 * kHour, 4, kHour);
  const Job b = job(1, -kHour, 2, 30 * kMinute);
  const Job running_job = job(2, -3 * kHour, 3, 4 * kHour);

  std::vector<WaitingJob> waiting = {{&a, a.runtime}, {&b, b.runtime}};
  std::vector<RunningJob> running = {{&running_job, -kHour, kHour}};

  SchedulerState state;
  state.now = 0;
  state.capacity = 8;
  state.free_nodes = 5;
  state.waiting = waiting;
  state.running = running;

  const SearchProblem p =
      SearchProblem::from_state(state, BoundSpec::dynamic_bound());
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.now, 0);
  EXPECT_EQ(p.capacity, 8);
  // Profile: 3 nodes busy until the running job's estimated end (t=1h).
  EXPECT_EQ(p.base.free_at(0), 5);
  EXPECT_EQ(p.base.free_at(kHour), 8);
  // dynB = max current wait = 2h, resolved for every job.
  EXPECT_EQ(p.jobs[0].bound, 2 * kHour);
  EXPECT_EQ(p.jobs[1].bound, 2 * kHour);
  // lxf key: job a waited 2h with a 1h estimate -> slowdown 3.
  EXPECT_DOUBLE_EQ(p.jobs[0].slowdown_now, 3.0);
  EXPECT_DOUBLE_EQ(p.jobs[1].slowdown_now, 3.0);  // 1h wait / 30m est
}

TEST(SearchProblem, FixedBoundIndependentOfQueue) {
  const Job a = job(0, -10 * kHour, 1, kHour);
  std::vector<WaitingJob> waiting = {{&a, a.runtime}};
  SchedulerState state;
  state.now = 0;
  state.capacity = 4;
  state.free_nodes = 4;
  state.waiting = waiting;
  const SearchProblem p =
      SearchProblem::from_state(state, BoundSpec::fixed_bound(5 * kHour));
  EXPECT_EQ(p.jobs[0].bound, 5 * kHour);
}

TEST(SearchProblem, EstimateClampedToOneSecond) {
  const Job a = job(0, 0, 1, 1);
  std::vector<WaitingJob> waiting = {{&a, 0}};  // degenerate estimate
  SchedulerState state;
  state.now = 0;
  state.capacity = 4;
  state.free_nodes = 4;
  state.waiting = waiting;
  const SearchProblem p =
      SearchProblem::from_state(state, BoundSpec::dynamic_bound());
  EXPECT_EQ(p.jobs[0].estimate, 1);
}

TEST(SearchProblem, ExcessIsWaitBeyondBound) {
  const Job a = job(0, 0, 1, kHour);
  std::vector<WaitingJob> waiting = {{&a, a.runtime}};
  SchedulerState state;
  state.now = 0;
  state.capacity = 4;
  state.free_nodes = 4;
  state.waiting = waiting;
  const SearchProblem p =
      SearchProblem::from_state(state, BoundSpec::fixed_bound(kHour));
  EXPECT_DOUBLE_EQ(p.excess_h(0, 30 * kMinute), 0.0);  // within bound
  EXPECT_DOUBLE_EQ(p.excess_h(0, kHour), 0.0);         // exactly at bound
  EXPECT_DOUBLE_EQ(p.excess_h(0, 3 * kHour), 2.0);     // 2h over
}

TEST(SearchProblem, BsldUsesEstimateWithMinuteFloor) {
  const Job a = job(0, 0, 1, 10);  // 10-second estimate -> floored to 1 min
  std::vector<WaitingJob> waiting = {{&a, a.runtime}};
  SchedulerState state;
  state.now = 0;
  state.capacity = 4;
  state.free_nodes = 4;
  state.waiting = waiting;
  const SearchProblem p =
      SearchProblem::from_state(state, BoundSpec::dynamic_bound());
  EXPECT_DOUBLE_EQ(p.bsld(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.bsld(0, kMinute), 2.0);
}

TEST(SearchProblem, OverrunningJobClampedToImminentEnd) {
  // A running job whose estimated end is already in the past must still
  // occupy its nodes "until imminently" rather than corrupting the profile.
  const Job r = job(0, -2 * kHour, 4, kHour);
  const Job w = job(1, 0, 4, kHour);
  std::vector<WaitingJob> waiting = {{&w, w.runtime}};
  std::vector<RunningJob> running = {{&r, -2 * kHour, -kHour}};  // est_end past
  SchedulerState state;
  state.now = 0;
  state.capacity = 4;
  state.free_nodes = 0;
  state.waiting = waiting;
  state.running = running;
  const SearchProblem p =
      SearchProblem::from_state(state, BoundSpec::dynamic_bound());
  EXPECT_EQ(p.base.free_at(0), 0);
  EXPECT_EQ(p.base.free_at(2), 4);
}

}  // namespace
}  // namespace sbs
