#include "exp/grid.hpp"

#include <gtest/gtest.h>

#include "predict/predictor.hpp"
#include "util/error.hpp"

namespace sbs {
namespace {

GridSpec small_spec() {
  GridSpec spec;
  spec.months = {"9/03", "10/03"};
  spec.policies = {"FCFS-BF", "DDS/lxf/dynB"};
  spec.node_limit = 300;
  spec.generator.job_scale = 0.1;
  return spec;
}

TEST(Grid, ProducesMonthMajorRows) {
  const auto rows = run_grid(small_spec());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].month, "9/03");
  EXPECT_EQ(rows[0].policy, "FCFS-backfill");
  EXPECT_EQ(rows[1].month, "9/03");
  EXPECT_EQ(rows[1].policy, "DDS/lxf/dynB");
  EXPECT_EQ(rows[2].month, "10/03");
  EXPECT_EQ(rows[3].month, "10/03");
}

TEST(Grid, MatchesDirectEvaluation) {
  const GridSpec spec = small_spec();
  const auto rows = run_grid(spec);

  const Trace trace = generate_month("9/03", spec.generator);
  const Thresholds th = fcfs_thresholds(trace);
  const MonthEval direct = evaluate_spec(trace, "DDS/lxf/dynB", 300, th);
  EXPECT_DOUBLE_EQ(rows[1].summary.avg_wait_h, direct.summary.avg_wait_h);
  EXPECT_DOUBLE_EQ(rows[1].summary.max_wait_h, direct.summary.max_wait_h);
  EXPECT_DOUBLE_EQ(rows[1].e_max.total_h, direct.e_max.total_h);
}

TEST(Grid, ThreadCountDoesNotChangeResults) {
  GridSpec spec = small_spec();
  spec.threads = 1;
  const auto serial = run_grid(spec);
  spec.threads = 4;
  const auto parallel = run_grid(spec);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].policy, parallel[i].policy);
    EXPECT_DOUBLE_EQ(serial[i].summary.avg_wait_h,
                     parallel[i].summary.avg_wait_h);
    EXPECT_DOUBLE_EQ(serial[i].summary.avg_bounded_slowdown,
                     parallel[i].summary.avg_bounded_slowdown);
    EXPECT_EQ(serial[i].sched.nodes_visited, parallel[i].sched.nodes_visited);
  }
}

TEST(Grid, LoadRescaleApplied) {
  GridSpec spec = small_spec();
  spec.months = {"10/03"};
  spec.policies = {"FCFS-BF"};
  spec.load = 0.9;
  spec.keep_outcomes = true;
  const auto rows = run_grid(spec);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].outcomes.empty());
}

TEST(Grid, OutcomesDroppedByDefault) {
  const auto rows = run_grid(small_spec());
  EXPECT_TRUE(rows[0].outcomes.empty());
}

TEST(Grid, RejectsBadInput) {
  GridSpec empty = small_spec();
  empty.policies.clear();
  EXPECT_THROW(run_grid(empty), Error);

  GridSpec typo = small_spec();
  typo.policies = {"FCSF-BF"};
  EXPECT_THROW(run_grid(typo), Error);

  GridSpec unknown_month = small_spec();
  unknown_month.months = {"13/99"};
  EXPECT_THROW(run_grid(unknown_month), Error);

  GridSpec with_predictor = small_spec();
  IdentityPredictor predictor;
  with_predictor.sim.predictor = &predictor;
  EXPECT_THROW(run_grid(with_predictor), Error);
}

TEST(Grid, AllMonthsWhenUnspecified) {
  GridSpec spec = small_spec();
  spec.months.clear();
  spec.policies = {"FCFS-BF"};
  const auto rows = run_grid(spec);
  EXPECT_EQ(rows.size(), 10u);
}

}  // namespace
}  // namespace sbs
