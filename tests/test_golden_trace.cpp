// Golden-trace regression: a committed mini SWF workload is replayed under
// the paper's headline search policy and both backfill baselines, and every
// per-job outcome must match the committed CSV exactly. Any change to
// placement, tie-breaking, search order or simulator event handling shows
// up here as a diff against a human-reviewable fixture.
//
// Refreshing the fixtures after an INTENDED behavior change:
//   SBS_REGEN_GOLDEN=1 ./test_golden_trace   # rewrites tests/data/*.csv
// then review the diff and commit it alongside the change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/policy_factory.hpp"
#include "fed/federation.hpp"
#include "fed/meta_scheduler.hpp"
#include "jobs/swf.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"

#ifndef SBS_TEST_DATA_DIR
#error "SBS_TEST_DATA_DIR must point at tests/data"
#endif

namespace sbs {
namespace {

struct GoldenRow {
  int id = 0;
  Time start = 0;
  Time end = 0;
};

std::string csv_path(const std::string& policy) {
  std::string file = policy;
  for (char& c : file)
    if (c == '/') c = '_';
  return std::string(SBS_TEST_DATA_DIR) + "/golden_" + file + ".csv";
}

std::vector<GoldenRow> outcome_rows(const std::vector<JobOutcome>& outcomes) {
  std::vector<GoldenRow> rows;
  for (const JobOutcome& o : outcomes)
    rows.push_back({o.job.id, o.start, o.end});
  return rows;
}

void write_golden(const std::string& path, const std::vector<GoldenRow>& rows) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << "id,start,end\n";
  for (const GoldenRow& r : rows)
    out << r.id << ',' << r.start << ',' << r.end << '\n';
}

std::vector<GoldenRow> read_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "missing golden file " << path
                  << " — run with SBS_REGEN_GOLDEN=1 to create it";
    return {};
  }
  std::vector<GoldenRow> rows;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    GoldenRow r;
    char comma = 0;
    std::istringstream ss(line);
    ss >> r.id >> comma >> r.start >> comma >> r.end;
    rows.push_back(r);
  }
  return rows;
}

class GoldenTrace : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenTrace, PerJobOutcomesMatchFixture) {
  const std::string policy = GetParam();
  const Trace trace =
      read_swf_file(std::string(SBS_TEST_DATA_DIR) + "/golden_mini.swf");
  ASSERT_EQ(trace.capacity, 16);
  ASSERT_EQ(trace.jobs.size(), 24u);

  auto scheduler = make_policy(policy, /*node_limit=*/300);
  const SimResult result = simulate(trace, *scheduler);
  ASSERT_EQ(result.outcomes.size(), trace.jobs.size());
  EXPECT_NO_THROW(test::check_feasible(result.outcomes, trace.capacity));
  const std::vector<GoldenRow> actual = outcome_rows(result.outcomes);

  if (std::getenv("SBS_REGEN_GOLDEN") != nullptr) {
    write_golden(csv_path(policy), actual);
    GTEST_SKIP() << "regenerated " << csv_path(policy);
  }

  const std::vector<GoldenRow> expected = read_golden(csv_path(policy));
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(expected[i].id));
    EXPECT_EQ(actual[i].id, expected[i].id);
    EXPECT_EQ(actual[i].start, expected[i].start);
    EXPECT_EQ(actual[i].end, expected[i].end);
  }
}

// The search policy's golden outcomes must be thread-count invariant too:
// the parallel engine replayed over the fixture gives the same CSV.
TEST(GoldenTrace, SearchOutcomesIndependentOfThreads) {
  const Trace trace =
      read_swf_file(std::string(SBS_TEST_DATA_DIR) + "/golden_mini.swf");
  auto sequential = make_policy("DDS/lxf/dynB", 300);
  const std::vector<GoldenRow> base =
      outcome_rows(simulate(trace, *sequential).outcomes);
  for (const std::size_t threads : {2u, 4u}) {
    auto parallel = make_policy("DDS/lxf/dynB", 300, -1.0, threads);
    const std::vector<GoldenRow> rows =
        outcome_rows(simulate(trace, *parallel).outcomes);
    ASSERT_EQ(rows.size(), base.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].start, base[i].start) << "job " << base[i].id;
      EXPECT_EQ(rows[i].end, base[i].end) << "job " << base[i].id;
    }
  }
}

// Golden fault-injection replay: the mini workload under a hand-written
// fault schedule — a 4-node block failing mid-schedule and recovering, plus
// one seeded job kill — with killed jobs resubmitted. Outcomes (including
// requeue counts and completion flags) are pinned to a committed CSV, and
// the incremental builder with warm start enabled must reproduce the
// cache-off engine exactly even across fault-perturbed decision points.
TEST(GoldenTrace, FaultInjectionOutcomesMatchFixture) {
  const Trace trace =
      read_swf_file(std::string(SBS_TEST_DATA_DIR) + "/golden_mini.swf");
  const FaultInjector faults = FaultInjector::from_events({
      {/*time=*/5000, FaultKind::NodeDown, /*nodes=*/4},
      {/*time=*/7000, FaultKind::JobKill, /*nodes=*/0, /*job_id=*/-1,
       /*draw=*/1},
      {/*time=*/9000, FaultKind::NodeUp, /*nodes=*/4},
  });
  SimConfig sim;
  sim.faults = &faults;
  sim.requeue = RequeuePolicy::Resubmit;

  auto run = [&](bool cache, bool warm_start) {
    auto policy = make_policy("DDS/lxf/dynB", /*node_limit=*/300,
                              /*deadline_ms=*/-1.0, /*threads=*/0, cache,
                              warm_start);
    return simulate(trace, *policy, sim);
  };

  const SimResult result = run(/*cache=*/true, /*warm_start=*/true);
  ASSERT_EQ(result.outcomes.size(), trace.jobs.size());
  EXPECT_GT(result.fault_stats.node_failures, 0u);
  EXPECT_GT(result.fault_stats.jobs_requeued, 0u);
  for (const auto& o : result.outcomes) EXPECT_TRUE(o.completed);

  // Bit-identity under faults: the naive cold-start engine produces the
  // exact same outcome table.
  const SimResult naive = run(/*cache=*/false, /*warm_start=*/false);
  ASSERT_EQ(naive.outcomes.size(), result.outcomes.size());
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(result.outcomes[i].job.id));
    EXPECT_EQ(naive.outcomes[i].start, result.outcomes[i].start);
    EXPECT_EQ(naive.outcomes[i].end, result.outcomes[i].end);
    EXPECT_EQ(naive.outcomes[i].requeue_count,
              result.outcomes[i].requeue_count);
  }

  const std::string path =
      std::string(SBS_TEST_DATA_DIR) + "/golden_faults_DDS_lxf_dynB.csv";
  std::vector<std::string> actual;
  for (const JobOutcome& o : result.outcomes) {
    std::ostringstream row;
    row << o.job.id << ',' << o.start << ',' << o.end << ','
        << o.requeue_count << ',' << (o.completed ? 1 : 0);
    actual.push_back(row.str());
  }

  if (std::getenv("SBS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << "id,start,end,requeues,completed\n";
    for (const std::string& row : actual) out << row << '\n';
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with SBS_REGEN_GOLDEN=1 to create it";
  std::string line;
  std::getline(in, line);  // header
  std::vector<std::string> expected;
  while (std::getline(in, line))
    if (!line.empty()) expected.push_back(line);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(actual[i], expected[i]) << "row " << i;
}

// Golden federation replay: the mini workload spread over three member
// clusters (16 + 8 + 8 nodes) under the headline search policy, with a
// 12-node block failing on the wide cluster mid-schedule. Jobs stranded
// wider than the degraded cluster migrate to the 8-node members; jobs
// wider than every survivor wait for the repair. Final per-job outcomes —
// including which cluster finally hosted each job — are pinned to a
// committed CSV, regenerable with SBS_REGEN_GOLDEN=1.
TEST(GoldenTrace, FederationOutcomesMatchFixture) {
  const Trace trace =
      read_swf_file(std::string(SBS_TEST_DATA_DIR) + "/golden_mini.swf");
  const FaultInjector big_faults = FaultInjector::from_events({
      {/*time=*/2000, FaultKind::NodeDown, /*nodes=*/12},
      {/*time=*/8000, FaultKind::NodeUp, /*nodes=*/12},
  });
  fed::FederationConfig fc;
  fc.members = {{"big", 16, &big_faults},
                {"mid", 8, nullptr},
                {"small", 8, nullptr}};
  const auto factory = make_policy_factory("DDS/lxf/dynB", /*node_limit=*/300);
  const auto meta = fed::make_meta("least-loaded");
  fed::Federation federation(trace, factory, *meta, fc);
  const fed::FederationResult fr = federation.run();

  ASSERT_EQ(fr.outcomes.size(), trace.jobs.size());
  EXPECT_GE(fr.migrations, 1u) << "the fixture must exercise migration";
  for (std::size_t i = 0; i < fr.members.size(); ++i) {
    std::vector<JobOutcome> hosted;
    for (std::size_t j = 0; j < fr.outcomes.size(); ++j)
      if (fr.owner[j] == static_cast<int>(i) && fr.outcomes[j].completed)
        hosted.push_back(fr.outcomes[j]);
    EXPECT_NO_THROW(test::check_feasible(hosted, fr.members[i].capacity));
  }

  const std::string path =
      std::string(SBS_TEST_DATA_DIR) + "/golden_federation_DDS_lxf_dynB.csv";
  std::vector<std::string> actual;
  for (std::size_t j = 0; j < fr.outcomes.size(); ++j) {
    const JobOutcome& o = fr.outcomes[j];
    std::ostringstream row;
    row << o.job.id << ',' << o.start << ',' << o.end << ',' << fr.owner[j]
        << ',' << o.requeue_count << ',' << (o.completed ? 1 : 0);
    actual.push_back(row.str());
  }

  if (std::getenv("SBS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << "id,start,end,cluster,requeues,completed\n";
    for (const std::string& row : actual) out << row << '\n';
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with SBS_REGEN_GOLDEN=1 to create it";
  std::string line;
  std::getline(in, line);  // header
  std::vector<std::string> expected;
  while (std::getline(in, line))
    if (!line.empty()) expected.push_back(line);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(actual[i], expected[i]) << "row " << i;
}

INSTANTIATE_TEST_SUITE_P(Policies, GoldenTrace,
                         ::testing::Values("DDS/lxf/dynB", "FCFS-BF",
                                           "LXF-BF"),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           for (char& c : name)
                             if (c == '/' || c == '-' || c == '&') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace sbs
