#pragma once

// Shared builders and invariant checkers for the test suite.

#include <algorithm>
#include <map>
#include <vector>

#include "jobs/trace.hpp"
#include "sim/outcome.hpp"

namespace sbs::test {

/// Compact job builder: submit/runtime in seconds.
inline Job job(int id, Time submit, int nodes, Time runtime,
               Time requested = 0, bool in_window = true) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.nodes = nodes;
  j.runtime = runtime;
  j.requested = requested > 0 ? requested : runtime;
  j.in_window = in_window;
  return j;
}

/// Builds a trace from jobs (normalized: ids reassigned in submit order).
inline Trace trace_of(std::vector<Job> jobs, int capacity,
                      Time window_begin = 0, Time window_end = 0) {
  Trace t;
  t.name = "test";
  t.capacity = capacity;
  t.jobs = std::move(jobs);
  t.normalize();
  t.window_begin = window_begin;
  if (window_end == 0) {
    for (const auto& j : t.jobs)
      window_end = std::max(window_end, j.submit + j.runtime + 1);
  }
  t.window_end = window_end;
  return t;
}

/// Verifies the outcomes respect the physics of the machine: every job
/// starts at or after submission, runs exactly its runtime, and the node
/// usage never exceeds capacity at any instant. Returns the peak usage.
inline int check_feasible(const std::vector<JobOutcome>& outcomes,
                          int capacity) {
  std::map<Time, int> delta;
  for (const auto& o : outcomes) {
    if (o.start < o.job.submit)
      throw std::logic_error("job started before submission");
    if (o.end - o.start != o.job.runtime)
      throw std::logic_error("job did not run exactly its runtime");
    delta[o.start] += o.job.nodes;
    delta[o.end] -= o.job.nodes;
  }
  int used = 0, peak = 0;
  for (const auto& [t, d] : delta) {
    used += d;
    peak = std::max(peak, used);
    if (used > capacity) throw std::logic_error("capacity exceeded");
  }
  if (used != 0) throw std::logic_error("usage did not return to zero");
  return peak;
}

}  // namespace sbs::test

#include "core/search_problem.hpp"

namespace sbs::test {

/// Owns the Job storage behind a SearchProblem so tests can build decision
/// points declaratively. Keep the builder alive while the problem is used.
class ProblemBuilder {
 public:
  explicit ProblemBuilder(int capacity, Time now = 0)
      : capacity_(capacity), now_(now) {
    jobs_.reserve(64);  // pointers into this vector must stay valid
  }

  /// Adds a waiting job; bound defaults to "very large" (never excessive).
  ProblemBuilder& wait(Time submit, int nodes, Time runtime,
                       Time bound = 1000 * kHour) {
    jobs_.push_back(job(static_cast<int>(jobs_.size()), submit, nodes, runtime));
    bounds_.push_back(bound);
    return *this;
  }

  /// Marks nodes busy over [now, now + remaining); nodes <= 0 is a no-op
  /// so randomized tests can draw from [0, capacity].
  ProblemBuilder& busy(int nodes, Time remaining) {
    if (nodes > 0) busy_.emplace_back(nodes, remaining);
    return *this;
  }

  SearchProblem build() const {
    SearchProblem p;
    p.now = now_;
    p.capacity = capacity_;
    p.base = ResourceProfile(capacity_, now_);
    for (const auto& [nodes, remaining] : busy_)
      p.base.reserve(now_, nodes, remaining);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      SearchJob s;
      s.job = &jobs_[i];
      s.nodes = jobs_[i].nodes;
      s.estimate = jobs_[i].runtime;
      s.submit = jobs_[i].submit;
      s.bound = bounds_[i];
      const double est = static_cast<double>(
          std::max<Time>(s.estimate, kMinute));
      s.slowdown_now =
          (static_cast<double>(now_ - s.submit) + est) / est;
      p.jobs.push_back(s);
    }
    return p;
  }

 private:
  int capacity_;
  Time now_;
  std::vector<Job> jobs_;
  std::vector<Time> bounds_;
  std::vector<std::pair<int, Time>> busy_;
};

}  // namespace sbs::test
