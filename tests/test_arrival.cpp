#include "workload/arrival.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace sbs {
namespace {

TEST(Arrival, RateHasDiurnalShape) {
  ArrivalConfig cfg;
  cfg.diurnal_amplitude = 0.4;
  cfg.weekend_factor = 1.0;
  const ArrivalSampler sampler(cfg, 0, 7 * kDay);
  // Peak at 12:00 (phase 0.5 with the -0.25 shift -> sin = 1).
  EXPECT_NEAR(sampler.rate_at(12 * kHour), 1.4, 1e-9);
  // Trough at midnight (sin = -1).
  EXPECT_NEAR(sampler.rate_at(0), 0.6, 1e-9);
  EXPECT_NEAR(sampler.rate_at(kDay), 0.6, 1e-9);
}

TEST(Arrival, WeekendDipApplies) {
  ArrivalConfig cfg;
  cfg.diurnal_amplitude = 0.0;
  cfg.weekend_factor = 0.5;
  const ArrivalSampler sampler(cfg, 0, 14 * kDay);
  EXPECT_NEAR(sampler.rate_at(2 * kDay), 1.0, 1e-9);   // weekday
  EXPECT_NEAR(sampler.rate_at(5 * kDay + kHour), 0.5, 1e-9);  // day 5
  EXPECT_NEAR(sampler.rate_at(6 * kDay + kHour), 0.5, 1e-9);  // day 6
}

TEST(Arrival, SamplesStayInRange) {
  ArrivalConfig cfg;
  Rng rng(3);
  const ArrivalSampler sampler(cfg, 100, 1000);
  const auto arrivals = sampler.sample(rng, 500);
  ASSERT_EQ(arrivals.size(), 500u);
  for (Time t : arrivals) {
    EXPECT_GE(t, 100);
    EXPECT_LT(t, 1100);
  }
}

TEST(Arrival, NegativeBeginSupported) {
  // Warm-up batches sample in [-week, 0).
  ArrivalConfig cfg;
  Rng rng(5);
  const ArrivalSampler sampler(cfg, -kWeek, kWeek);
  const auto arrivals = sampler.sample(rng, 200);
  for (Time t : arrivals) {
    EXPECT_GE(t, -kWeek);
    EXPECT_LT(t, 0);
  }
}

TEST(Arrival, DiurnalBiasVisibleInSamples) {
  ArrivalConfig cfg;
  cfg.diurnal_amplitude = 0.9;
  cfg.weekend_factor = 1.0;
  Rng rng(7);
  const ArrivalSampler sampler(cfg, 0, 30 * kDay);
  std::size_t day_half = 0, night_half = 0;
  for (Time t : sampler.sample(rng, 20000)) {
    const Time tod = t % kDay;
    if (tod >= 6 * kHour && tod < 18 * kHour)
      ++day_half;
    else
      ++night_half;
  }
  EXPECT_GT(day_half, night_half * 1.5);
}

TEST(Arrival, BurstsClusterSubmissions) {
  ArrivalConfig bursty;
  bursty.burst_fraction = 0.5;
  bursty.burst_mean_size = 10.0;
  bursty.burst_spread = kMinute;
  ArrivalConfig smooth;

  Rng rng_a(11), rng_b(11);
  const Time span = 30 * kDay;
  auto clustering = [&](const ArrivalConfig& cfg, Rng& rng) {
    const ArrivalSampler sampler(cfg, 0, span);
    auto arrivals = sampler.sample(rng, 3000);
    std::sort(arrivals.begin(), arrivals.end());
    // Fraction of consecutive gaps under a minute.
    std::size_t tight = 0;
    for (std::size_t i = 1; i < arrivals.size(); ++i)
      if (arrivals[i] - arrivals[i - 1] <= kMinute) ++tight;
    return static_cast<double>(tight) / static_cast<double>(arrivals.size());
  };
  EXPECT_GT(clustering(bursty, rng_a), 2.0 * clustering(smooth, rng_b));
}

TEST(Arrival, Deterministic) {
  ArrivalConfig cfg;
  cfg.burst_fraction = 0.3;
  Rng a(9), b(9);
  const ArrivalSampler sampler(cfg, 0, kDay);
  EXPECT_EQ(sampler.sample(a, 100), sampler.sample(b, 100));
}

TEST(Arrival, RejectsBadConfig) {
  ArrivalConfig cfg;
  cfg.diurnal_amplitude = 1.5;
  EXPECT_THROW(ArrivalSampler(cfg, 0, kDay), Error);
  ArrivalConfig cfg2;
  cfg2.burst_mean_size = 1.0;
  EXPECT_THROW(ArrivalSampler(cfg2, 0, kDay), Error);
  ArrivalConfig cfg3;
  EXPECT_THROW(ArrivalSampler(cfg3, 0, 0), Error);
}

}  // namespace
}  // namespace sbs
