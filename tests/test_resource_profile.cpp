#include "cluster/resource_profile.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

TEST(ResourceProfile, StartsAtFullCapacity) {
  ResourceProfile p(16, 100);
  EXPECT_EQ(p.capacity(), 16);
  EXPECT_EQ(p.origin(), 100);
  EXPECT_EQ(p.free_at(100), 16);
  EXPECT_EQ(p.free_at(1'000'000), 16);
  EXPECT_EQ(p.step_count(), 1u);
}

TEST(ResourceProfile, QueryBeforeOriginThrows) {
  ResourceProfile p(4, 50);
  EXPECT_THROW(p.free_at(49), Error);
}

TEST(ResourceProfile, ReserveCarvesInterval) {
  ResourceProfile p(8, 0);
  p.reserve(10, 3, 20);  // [10, 30)
  EXPECT_EQ(p.free_at(0), 8);
  EXPECT_EQ(p.free_at(9), 8);
  EXPECT_EQ(p.free_at(10), 5);
  EXPECT_EQ(p.free_at(29), 5);
  EXPECT_EQ(p.free_at(30), 8);
}

TEST(ResourceProfile, OverlappingReservationsStack) {
  ResourceProfile p(8, 0);
  p.reserve(0, 3, 100);
  p.reserve(50, 4, 100);  // overlap in [50, 100)
  EXPECT_EQ(p.free_at(25), 5);
  EXPECT_EQ(p.free_at(75), 1);
  EXPECT_EQ(p.free_at(125), 4);
  EXPECT_EQ(p.free_at(200), 8);
}

TEST(ResourceProfile, ReserveThatDoesNotFitThrows) {
  ResourceProfile p(4, 0);
  p.reserve(0, 3, 100);
  EXPECT_THROW(p.reserve(50, 2, 10), Error);
}

TEST(ResourceProfile, FitsChecksWholeInterval) {
  ResourceProfile p(8, 0);
  p.reserve(50, 6, 50);  // [50, 100) has only 2 free
  EXPECT_TRUE(p.fits(0, 8, 50));    // ends exactly at the busy window
  EXPECT_FALSE(p.fits(0, 3, 51));   // leaks one second into it
  EXPECT_TRUE(p.fits(0, 2, 1000));  // 2 nodes always free
  EXPECT_TRUE(p.fits(100, 8, 10));
}

TEST(ResourceProfile, EarliestStartImmediateWhenFree) {
  ResourceProfile p(8, 0);
  EXPECT_EQ(p.earliest_start(0, 8, 100), 0);
}

TEST(ResourceProfile, EarliestStartWaitsForRelease) {
  ResourceProfile p(8, 0);
  p.reserve(0, 6, 100);  // 2 free until t=100
  EXPECT_EQ(p.earliest_start(0, 2, 50), 0);
  EXPECT_EQ(p.earliest_start(0, 3, 50), 100);
  EXPECT_EQ(p.earliest_start(0, 8, 1), 100);
}

TEST(ResourceProfile, EarliestStartSkipsShortGaps) {
  ResourceProfile p(8, 0);
  // 6 busy on [0,100), free gap [100,110), 6 busy again [110, 200).
  p.reserve(0, 6, 100);
  p.reserve(110, 6, 90);
  // A 3-node 10s job fits exactly in the gap.
  EXPECT_EQ(p.earliest_start(0, 3, 10), 100);
  // An 11s job does not; it must wait until the second block ends.
  EXPECT_EQ(p.earliest_start(0, 3, 11), 200);
}

TEST(ResourceProfile, EarliestStartRespectsFromInsideBusyInterval) {
  ResourceProfile p(8, 0);
  p.reserve(0, 6, 100);
  EXPECT_EQ(p.earliest_start(40, 2, 10), 40);
  EXPECT_EQ(p.earliest_start(40, 4, 10), 100);
}

TEST(ResourceProfile, EarliestStartFarFuture) {
  ResourceProfile p(8, 0);
  p.reserve(0, 8, 1000);
  EXPECT_EQ(p.earliest_start(0, 1, 10), 1000);
}

TEST(ResourceProfile, ReleaseRestoresNodes) {
  ResourceProfile p(8, 0);
  p.reserve(0, 8, 100);
  p.release(50, 3, 25);  // give 3 back over [50, 75)
  EXPECT_EQ(p.free_at(40), 0);
  EXPECT_EQ(p.free_at(60), 3);
  EXPECT_EQ(p.free_at(80), 0);
}

TEST(ResourceProfile, ReleaseClampedAtOrigin) {
  ResourceProfile p(8, 100);
  p.reserve(100, 4, 50);
  // Release starting before origin only affects [origin, ...).
  p.release(50, 4, 80);  // [50, 130) clamped to [100, 130)
  EXPECT_EQ(p.free_at(100), 8);
  EXPECT_EQ(p.free_at(135), 4);
}

TEST(ResourceProfile, ReleaseOverflowThrows) {
  ResourceProfile p(8, 0);
  EXPECT_THROW(p.release(0, 1, 10), Error);
}

TEST(ResourceProfile, CompactMergesEqualSteps) {
  ResourceProfile p(8, 0);
  p.reserve(10, 2, 10);
  p.release(10, 2, 10);  // back to flat
  p.compact();
  EXPECT_EQ(p.step_count(), 1u);
  EXPECT_EQ(p.free_at(15), 8);
}

TEST(ResourceProfile, CopyIsIndependent) {
  ResourceProfile a(8, 0);
  a.reserve(0, 4, 100);
  ResourceProfile b = a;
  b.reserve(0, 4, 50);
  EXPECT_EQ(a.free_at(25), 4);
  EXPECT_EQ(b.free_at(25), 0);
}

// ---------------------------------------------------------------------------
// Property test: random reservation workloads checked against a brute-force
// per-second timeline.

class BruteForce {
 public:
  BruteForce(int capacity, int horizon) : free_(horizon, capacity) {}

  int free_at(int t) const { return free_[t]; }

  bool fits(int start, int nodes, int duration) const {
    for (int t = start; t < start + duration; ++t)
      if (t < static_cast<int>(free_.size()) && free_[t] < nodes) return false;
    return true;
  }

  int earliest_start(int from, int nodes, int duration) const {
    for (int t = from;; ++t)
      if (fits(t, nodes, duration)) return t;
  }

  void reserve(int start, int nodes, int duration) {
    for (int t = start; t < start + duration && t < static_cast<int>(free_.size());
         ++t)
      free_[t] -= nodes;
  }

 private:
  std::vector<int> free_;
};

class ProfileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileProperty, MatchesBruteForceTimeline) {
  const int capacity = 16;
  const int horizon = 400;
  Rng rng(GetParam());
  ResourceProfile profile(capacity, 0);
  BruteForce reference(capacity, horizon);

  for (int step = 0; step < 60; ++step) {
    const int nodes = static_cast<int>(rng.uniform_int(1, capacity));
    const int duration = static_cast<int>(rng.uniform_int(1, 40));
    const int from = static_cast<int>(rng.uniform_int(0, 200));

    const Time start = profile.earliest_start(from, nodes, duration);
    const int expected = reference.earliest_start(from, nodes, duration);
    ASSERT_EQ(start, expected) << "step " << step;

    // Randomly commit about half of the queries.
    if (rng.bernoulli(0.5) && start + duration < horizon) {
      profile.reserve(start, nodes, duration);
      reference.reserve(static_cast<int>(start), nodes, duration);
    }

    // Spot-check free counts at random times.
    for (int probe = 0; probe < 5; ++probe) {
      const int t = static_cast<int>(rng.uniform_int(0, horizon - 1));
      ASSERT_EQ(profile.free_at(t), reference.free_at(t)) << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, ProfileProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

}  // namespace
}  // namespace sbs
