#include "core/search_scheduler.hpp"

#include <gtest/gtest.h>

#include "policies/backfill.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::check_feasible;
using test::job;
using test::trace_of;

SearchScheduler make(SearchAlgo algo = SearchAlgo::Dds,
                     Branching branching = Branching::Lxf,
                     BoundSpec bound = BoundSpec::dynamic_bound(),
                     std::size_t limit = 1000) {
  SearchSchedulerConfig cfg;
  cfg.search.algo = algo;
  cfg.search.branching = branching;
  cfg.search.node_limit = limit;
  cfg.bound = bound;
  return SearchScheduler(cfg);
}

TEST(SearchScheduler, NamesMatchPaperNotation) {
  EXPECT_EQ(make().name(), "DDS/lxf/dynB");
  EXPECT_EQ(make(SearchAlgo::Lds, Branching::Fcfs,
                 BoundSpec::fixed_bound(100 * kHour))
                .name(),
            "LDS/fcfs/w=100h");
  EXPECT_EQ(make(SearchAlgo::Dds, Branching::Lxf,
                 BoundSpec::per_runtime(kHour, 2.0, kHour, 10 * kHour))
                .name(),
            "DDS/lxf/w(T)");
}

TEST(SearchScheduler, StartsJobsPlacedAtNow) {
  const Trace t = trace_of({job(0, 0, 2, kHour), job(1, 0, 2, kHour)}, 4);
  auto s = make();
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[0].start, 0);
  EXPECT_EQ(r.outcomes[1].start, 0);
}

TEST(SearchScheduler, ResolvesContentionViaSearch) {
  const Trace t = trace_of({job(0, 0, 3, kHour), job(1, 0, 3, kHour)}, 4);
  auto s = make();
  const SimResult r = simulate(t, s);
  // One job now, one at the drain point.
  const Time s0 = r.outcomes[0].start, s1 = r.outcomes[1].start;
  EXPECT_EQ(std::min(s0, s1), 0);
  EXPECT_EQ(std::max(s0, s1), kHour);
  check_feasible(r.outcomes, 4);
}

TEST(SearchScheduler, BackfillsThroughSearch) {
  // The search should discover the backfill move: j2 fits before the wide
  // j1's earliest start and finishes in time.
  const Trace t = trace_of({job(0, 0, 3, 100), job(1, 10, 4, 100),
                            job(2, 20, 1, 50)},
                           4);
  auto s = make();
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[2].start, 20);
  check_feasible(r.outcomes, 4);
}

TEST(SearchScheduler, StatsAccumulateAcrossDecisions) {
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 10, 4, 100),
                            job(2, 20, 4, 100)},
                           4);
  auto s = make();
  simulate(t, s);
  const SchedulerStats stats = s.stats();
  EXPECT_GE(stats.decisions, 3u);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.paths_explored, 0u);
}

TEST(SearchScheduler, FastPathSkipsSearchWhenNothingFits) {
  // Machine fully busy when the narrow job arrives: the decision at its
  // arrival must not burn search nodes.
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 10, 4, 50)}, 4);
  auto s = make();
  simulate(t, s);
  // Decisions: t=0 (start j0), t=10 (full machine -> fast path), t=100
  // (start j1), t=150. Node visits only at t=0 and t=100: one job each.
  EXPECT_EQ(s.stats().nodes_visited, 2u);
}

TEST(SearchScheduler, DynamicBoundKeepsMaxWaitNearFcfsEnvelope) {
  // A starvation-prone pattern: one wide job and a stream of narrow ones.
  // The total-excess objective may delay the wide job in favor of the many
  // narrow ones, but dynB keeps every wait inside (a small factor of) the
  // FCFS-backfill max-wait envelope — the paper's headline property.
  std::vector<Job> jobs;
  jobs.push_back(job(0, 0, 4, 1000));
  jobs.push_back(job(1, 10, 4, 500));  // the potential starvation victim
  for (int i = 2; i < 30; ++i)
    jobs.push_back(job(i, 20 + i, 1, 900));
  const Trace t = trace_of(std::move(jobs), 4);

  BackfillConfig fcfs_cfg;
  BackfillScheduler fcfs(fcfs_cfg);
  const SimResult base = simulate(t, fcfs);
  Time fcfs_max_wait = 0;
  for (const auto& o : base.outcomes)
    fcfs_max_wait = std::max(fcfs_max_wait, o.wait());

  auto s = make();
  const SimResult r = simulate(t, s);
  check_feasible(r.outcomes, 4);
  Time dds_max_wait = 0;
  for (const auto& o : r.outcomes)
    dds_max_wait = std::max(dds_max_wait, o.wait());
  EXPECT_LE(dds_max_wait, static_cast<Time>(1.2 * fcfs_max_wait));
}

TEST(SearchScheduler, ProducesFeasibleSchedulesOnRandomLoad) {
  Rng rng(4242);
  std::vector<Job> jobs;
  Time submit = 0;
  for (int i = 0; i < 120; ++i) {
    submit += static_cast<Time>(rng.uniform_int(0, 120));
    jobs.push_back(job(i, submit, static_cast<int>(rng.uniform_int(1, 16)),
                       static_cast<Time>(rng.uniform_int(1, 2000))));
  }
  const Trace t = trace_of(std::move(jobs), 16);
  for (const SearchAlgo algo : {SearchAlgo::Lds, SearchAlgo::Dds}) {
    for (const Branching br : {Branching::Fcfs, Branching::Lxf}) {
      auto s = make(algo, br);
      const SimResult r = simulate(t, s);
      EXPECT_NO_THROW(check_feasible(r.outcomes, 16));
    }
  }
}

TEST(SearchScheduler, RequestedRuntimesStillFeasible) {
  Rng rng(777);
  std::vector<Job> jobs;
  Time submit = 0;
  for (int i = 0; i < 60; ++i) {
    submit += static_cast<Time>(rng.uniform_int(0, 200));
    const Time runtime = static_cast<Time>(rng.uniform_int(1, 2000));
    jobs.push_back(job(i, submit, static_cast<int>(rng.uniform_int(1, 8)),
                       runtime, runtime * 3));
  }
  const Trace t = trace_of(std::move(jobs), 8);
  SimConfig sim;
  sim.use_requested_runtime = true;
  auto s = make();
  const SimResult r = simulate(t, s, sim);
  EXPECT_NO_THROW(check_feasible(r.outcomes, 8));
}

}  // namespace
}  // namespace sbs
