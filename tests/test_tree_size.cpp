#include "core/tree_size.hpp"

#include <gtest/gtest.h>

namespace sbs {
namespace {

TEST(TreeSize, ZeroJobs) {
  const TreeSize t = search_tree_size(0);
  EXPECT_DOUBLE_EQ(t.paths, 0.0);
  EXPECT_DOUBLE_EQ(t.nodes, 0.0);
}

TEST(TreeSize, SmallCases) {
  EXPECT_DOUBLE_EQ(search_tree_size(1).paths, 1.0);
  EXPECT_DOUBLE_EQ(search_tree_size(1).nodes, 1.0);
  EXPECT_DOUBLE_EQ(search_tree_size(2).paths, 2.0);
  EXPECT_DOUBLE_EQ(search_tree_size(2).nodes, 4.0);  // 2 + 2
  EXPECT_DOUBLE_EQ(search_tree_size(3).paths, 6.0);
  EXPECT_DOUBLE_EQ(search_tree_size(3).nodes, 15.0);  // 3 + 6 + 6
}

TEST(TreeSize, PaperFigure1dValues) {
  // Figure 1(d): 4 jobs -> 24 paths, 64 nodes; 10 jobs -> ~10M nodes;
  // 15 jobs -> 1,307,674M paths and 3,554,627M nodes.
  EXPECT_DOUBLE_EQ(search_tree_size(4).paths, 24.0);
  EXPECT_DOUBLE_EQ(search_tree_size(4).nodes, 64.0);
  EXPECT_DOUBLE_EQ(search_tree_size(10).paths, 3'628'800.0);
  EXPECT_DOUBLE_EQ(search_tree_size(10).nodes, 9'864'100.0);
  EXPECT_DOUBLE_EQ(search_tree_size(15).paths, 1'307'674'368'000.0);
  EXPECT_DOUBLE_EQ(search_tree_size(15).nodes, 3'554'627'472'075.0);
}

TEST(TreeSize, NodesExceedPathsForNAtLeastTwo) {
  for (std::size_t n = 2; n <= 20; ++n) {
    const TreeSize t = search_tree_size(n);
    EXPECT_GT(t.nodes, t.paths) << n;
  }
}

TEST(TreeSize, RecurrenceHolds) {
  // nodes(n) = n * (1 + nodes(n-1)) — each root child carries a shifted
  // copy of the (n-1)-job tree.
  for (std::size_t n = 2; n <= 15; ++n) {
    const double expected =
        static_cast<double>(n) * (1.0 + search_tree_size(n - 1).nodes);
    EXPECT_DOUBLE_EQ(search_tree_size(n).nodes, expected) << n;
  }
}

}  // namespace
}  // namespace sbs
