#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(7);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10, 3);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(TimeWeightedAverage, PiecewiseConstant) {
  TimeWeightedAverage a;
  a.observe(0.0, 2.0);   // value 2 over [0, 10)
  a.observe(10.0, 6.0);  // value 6 over [10, 20)
  a.observe(20.0, 0.0);
  EXPECT_DOUBLE_EQ(a.average(), 4.0);
}

TEST(TimeWeightedAverage, FirstObservationOnlySetsOrigin) {
  TimeWeightedAverage a;
  a.observe(5.0, 100.0);
  EXPECT_TRUE(a.empty());
  EXPECT_DOUBLE_EQ(a.average(), 0.0);
}

TEST(TimeWeightedAverage, RejectsTimeGoingBackwards) {
  TimeWeightedAverage a;
  a.observe(10.0, 1.0);
  EXPECT_THROW(a.observe(5.0, 1.0), Error);
}

TEST(TimeWeightedAverage, ZeroSpanObservationsIgnored) {
  TimeWeightedAverage a;
  a.observe(0.0, 3.0);
  a.observe(0.0, 5.0);  // zero span, value replaced
  a.observe(10.0, 0.0);
  EXPECT_DOUBLE_EQ(a.average(), 5.0);
}

TEST(Percentile, Empty) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  // Sorted: 10, 20, 30, 40. p=0.5 -> position 1.5 -> 25.
  EXPECT_DOUBLE_EQ(percentile({40, 10, 30, 20}, 0.5), 25.0);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 9, 1}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 9, 1}, 1.0), 9.0);
}

TEST(Percentile, P98OfHundredAndOne) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(v, 0.98), 98.0);
}

TEST(Percentile, RejectsOutOfRangeP) {
  EXPECT_THROW(percentile({1.0}, 1.5), Error);
  EXPECT_THROW(percentile({1.0}, -0.1), Error);
}

TEST(MeanMax, Helpers) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(max_of({-5, -2, -9}), -2.0);
  EXPECT_DOUBLE_EQ(max_of({}), 0.0);
}

}  // namespace
}  // namespace sbs
