#include "policies/priority.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace sbs {
namespace {

using test::job;

WaitingJob waiting(const Job& j, Time estimate = 0) {
  WaitingJob w;
  w.job = &j;
  w.estimate = estimate > 0 ? estimate : j.runtime;
  return w;
}

TEST(Priority, CurrentSlowdownGrowsWithWait) {
  const Job j = job(0, 0, 1, kHour);
  const WaitingJob w = waiting(j);
  EXPECT_DOUBLE_EQ(current_slowdown(w, 0), 1.0);
  EXPECT_DOUBLE_EQ(current_slowdown(w, kHour), 2.0);
  EXPECT_DOUBLE_EQ(current_slowdown(w, 3 * kHour), 4.0);
}

TEST(Priority, CurrentSlowdownFloorsShortEstimates) {
  const Job j = job(0, 0, 1, 1);  // 1-second job
  const WaitingJob w = waiting(j);
  // Floored to 1 minute: (60 + 60) / 60 = 2 after a minute of waiting.
  EXPECT_DOUBLE_EQ(current_slowdown(w, kMinute), 2.0);
}

TEST(Priority, FcfsOrdersBySubmitTime) {
  const Job a = job(0, 100, 1, kHour), b = job(1, 50, 1, kHour);
  std::vector<WaitingJob> q = {waiting(a), waiting(b)};
  const auto order = priority_order(PriorityKind::Fcfs, q, 200);
  EXPECT_EQ(order[0], 1u);  // earlier submit first
  EXPECT_EQ(order[1], 0u);
}

TEST(Priority, LxfPrefersLargerSlowdown) {
  // Short job waiting as long as a long job has much higher slowdown.
  const Job shortj = job(0, 0, 1, 10 * kMinute);
  const Job longj = job(1, 0, 1, 10 * kHour);
  std::vector<WaitingJob> q = {waiting(longj), waiting(shortj)};
  const auto order = priority_order(PriorityKind::Lxf, q, 2 * kHour);
  EXPECT_EQ(q[order[0]].job->id, 0);  // the short job leads
}

TEST(Priority, SjfPrefersShortEstimate) {
  const Job a = job(0, 0, 1, 5 * kHour), b = job(1, 10, 1, kMinute);
  std::vector<WaitingJob> q = {waiting(a), waiting(b)};
  const auto order = priority_order(PriorityKind::Sjf, q, 100);
  EXPECT_EQ(q[order[0]].job->id, 1);
}

TEST(Priority, LxfWaitBreaksTiesTowardLongerWait) {
  // Two jobs with identical slowdown-by-construction: double runtime and
  // double wait. LXF&W's wait term prefers the longer-waiting one.
  const Job a = job(0, -kHour, 1, kHour);        // wait 1h, sld 2
  const Job b = job(1, -2 * kHour, 1, 2 * kHour);  // wait 2h, sld 2
  std::vector<WaitingJob> q = {waiting(a), waiting(b)};
  const auto lxf_w = priority_order(PriorityKind::LxfWait, q, 0);
  EXPECT_EQ(q[lxf_w[0]].job->id, 1);
}

TEST(Priority, StableTieBreakKeepsFcfsOrder) {
  const Job a = job(0, 0, 1, kHour), b = job(1, 0, 1, kHour);
  std::vector<WaitingJob> q = {waiting(a), waiting(b)};
  const auto order = priority_order(PriorityKind::Lxf, q, kHour);
  EXPECT_EQ(order[0], 0u);  // equal keys: queue order preserved
  EXPECT_EQ(order[1], 1u);
}

TEST(Priority, Names) {
  EXPECT_EQ(priority_name(PriorityKind::Fcfs), "FCFS");
  EXPECT_EQ(priority_name(PriorityKind::Lxf), "LXF");
  EXPECT_EQ(priority_name(PriorityKind::Sjf), "SJF");
  EXPECT_EQ(priority_name(PriorityKind::LxfWait), "LXF&W");
}

}  // namespace
}  // namespace sbs
