// The federation's differential proof layer: a federation of exactly ONE
// member cluster must be bit-identical to the plain simulate() path — the
// same per-job outcomes, the same decision/fault/queue accounting, the
// same scheduler counters, and (modulo wall-clock think times) the same
// telemetry stream, byte for byte. Swept across the engine's knob matrix
// (algo x cache x threads x faults) in the style of the incremental-engine
// differential suite, this pins the external-arrival seam: injecting each
// trace arrival at its submit time and stepping to each event bound must
// reproduce the plain loop's batching exactly.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "exp/policy_factory.hpp"
#include "fed/federation.hpp"
#include "fed/meta_scheduler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "workload/generator.hpp"

namespace sbs {
namespace {

constexpr std::size_t kNodeLimit = 200;

// A small generated month: bursty arrivals, mixed widths, enough queueing
// for the search to make non-trivial decisions.
const Trace& diff_trace() {
  static const Trace trace = [] {
    GeneratorConfig cfg;
    cfg.job_scale = 0.04;
    cfg.seed = 77;
    return generate_month("7/03", cfg);
  }();
  return trace;
}

const FaultInjector& diff_faults() {
  static const FaultInjector faults = [] {
    FaultSpec fs;
    fs.node_mtbf = 86'400;
    fs.node_mttr = 3'600;
    fs.min_block = 2;
    fs.max_block = 4;
    fs.job_kill_mtbf = 172'800;
    fs.seed = 7;
    const Trace& t = diff_trace();
    return FaultInjector::from_spec(fs, t.window_begin, t.window_end,
                                    t.capacity);
  }();
  return faults;
}

/// Collects raw JSONL lines in memory for stream-level comparison.
class CaptureSink final : public obs::TraceSink {
 public:
  explicit CaptureSink(std::vector<std::string>& lines) : lines_(lines) {}
  void write(std::string_view json_line) override {
    lines_.emplace_back(json_line);
  }

 private:
  std::vector<std::string>& lines_;
};

SimResult plain_run(const std::string& spec, bool cache, std::size_t threads,
                    const FaultInjector* faults, obs::Telemetry* tel) {
  SimConfig sim;
  sim.faults = faults;
  sim.telemetry = tel;
  auto policy = make_policy(spec, kNodeLimit, -1.0, threads, cache);
  return simulate(diff_trace(), *policy, sim);
}

fed::FederationResult fed_of_one_run(const std::string& spec, bool cache,
                                     std::size_t threads,
                                     const FaultInjector* faults,
                                     obs::Telemetry* tel,
                                     const std::string& meta_spec) {
  const Trace& trace = diff_trace();
  fed::FederationConfig fc;
  fc.members = {{"only", trace.capacity, faults}};
  fc.telemetry = tel;
  const auto factory = make_policy_factory(spec, kNodeLimit, -1.0, threads,
                                           cache);
  const auto meta = fed::make_meta(meta_spec);
  fed::Federation federation(trace, factory, *meta, fc);
  return federation.run();
}

// Every field of every outcome, in job-id order.
void expect_outcomes_identical(const std::vector<JobOutcome>& plain,
                               const std::vector<JobOutcome>& fed) {
  ASSERT_EQ(plain.size(), fed.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(plain[i].job.id));
    EXPECT_EQ(fed[i].job.id, plain[i].job.id);
    EXPECT_EQ(fed[i].start, plain[i].start);
    EXPECT_EQ(fed[i].end, plain[i].end);
    EXPECT_EQ(fed[i].requeue_count, plain[i].requeue_count);
    EXPECT_EQ(fed[i].lost_node_seconds, plain[i].lost_node_seconds);
    EXPECT_EQ(fed[i].completed, plain[i].completed);
  }
}

// SchedulerStats equality minus the wall-clock fields (think_time_us and
// max_think_time_us measure host time, not simulated behavior). The
// parallel engine guarantees identical schedules and visited-node
// accounting for any thread count, but the cache hit/miss split and the
// prune tallies depend on thread timing — compare those only when the
// search ran sequentially.
void expect_sched_stats_identical(const SchedulerStats& plain,
                                  const SchedulerStats& fed,
                                  bool parallel) {
  EXPECT_EQ(fed.decisions, plain.decisions);
  EXPECT_EQ(fed.nodes_visited, plain.nodes_visited);
  EXPECT_EQ(fed.paths_explored, plain.paths_explored);
  EXPECT_EQ(fed.deadline_hits, plain.deadline_hits);
  EXPECT_EQ(fed.max_queue_depth, plain.max_queue_depth);
  EXPECT_EQ(fed.warm_starts, plain.warm_starts);
  if (parallel) return;
  EXPECT_EQ(fed.cache_hits, plain.cache_hits);
  EXPECT_EQ(fed.cache_misses, plain.cache_misses);
  EXPECT_EQ(fed.cache_invalidations, plain.cache_invalidations);
  EXPECT_EQ(fed.pruned_twins, plain.pruned_twins);
  EXPECT_EQ(fed.pruned_bound, plain.pruned_bound);
}

void expect_results_identical(const SimResult& plain,
                              const fed::FederationResult& fed,
                              bool parallel = false) {
  expect_outcomes_identical(plain.outcomes, fed.outcomes);
  ASSERT_EQ(fed.members.size(), 1u);
  const SimResult& member = fed.members[0].sim;
  // avg_queue_length is the same deterministic integration over the same
  // event sequence, so it must match to the bit, not within epsilon.
  EXPECT_EQ(fed.avg_queue_length, plain.avg_queue_length);
  EXPECT_EQ(member.decision_stats.decisions, plain.decision_stats.decisions);
  EXPECT_EQ(member.decision_stats.with_10_plus,
            plain.decision_stats.with_10_plus);
  EXPECT_EQ(member.decision_stats.max_waiting,
            plain.decision_stats.max_waiting);
  EXPECT_EQ(member.decision_stats.mean_waiting,
            plain.decision_stats.mean_waiting);
  EXPECT_EQ(member.fault_stats.node_failures, plain.fault_stats.node_failures);
  EXPECT_EQ(member.fault_stats.node_recoveries,
            plain.fault_stats.node_recoveries);
  EXPECT_EQ(member.fault_stats.jobs_killed, plain.fault_stats.jobs_killed);
  EXPECT_EQ(member.fault_stats.jobs_requeued, plain.fault_stats.jobs_requeued);
  EXPECT_EQ(member.fault_stats.jobs_dropped, plain.fault_stats.jobs_dropped);
  EXPECT_EQ(member.fault_stats.jobs_unstarted,
            plain.fault_stats.jobs_unstarted);
  EXPECT_EQ(member.fault_stats.lost_node_seconds,
            plain.fault_stats.lost_node_seconds);
  EXPECT_EQ(member.fault_stats.min_capacity, plain.fault_stats.min_capacity);
  expect_sched_stats_identical(plain.sched_stats, member.sched_stats,
                               parallel);
  EXPECT_EQ(fed.migrations, 0u);
  for (int owner : fed.owner) EXPECT_EQ(owner, 0);
}

// The knob matrix: both search algorithms, the incremental engine and its
// naive baseline, sequential and parallel search, fault-free and
// fault-injected. Every combination must be bit-identical.
TEST(FederationDifferential, FedOfOneMatchesPlainAcrossKnobMatrix) {
  for (const char* spec : {"DDS/lxf/dynB", "LDS/lxf/w=100h"}) {
    for (const bool cache : {true, false}) {
      for (const std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
        for (const bool with_faults : {false, true}) {
          SCOPED_TRACE(std::string(spec) + " cache=" + (cache ? "on" : "off") +
                       " threads=" + std::to_string(threads) + " faults=" +
                       (with_faults ? "on" : "off"));
          const FaultInjector* faults =
              with_faults ? &diff_faults() : nullptr;
          const SimResult plain =
              plain_run(spec, cache, threads, faults, nullptr);
          const fed::FederationResult fed =
              fed_of_one_run(spec, cache, threads, faults, nullptr,
                             "least-loaded");
          expect_results_identical(plain, fed, threads > 0);
        }
      }
    }
  }
}

// Identity must not depend on which meta-scheduler fronts the single
// member: with one cluster every policy has exactly one legal answer.
TEST(FederationDifferential, FedOfOneIdenticalUnderEveryMetaPolicy) {
  const SimResult plain =
      plain_run("DDS/lxf/dynB", true, 0, &diff_faults(), nullptr);
  for (const char* meta : {"rr", "least-loaded", "best-fit"}) {
    SCOPED_TRACE(meta);
    const fed::FederationResult fed =
        fed_of_one_run("DDS/lxf/dynB", true, 0, &diff_faults(), nullptr, meta);
    expect_results_identical(plain, fed);
  }
}

// Strips the wall-clock "think_us" field (host time, run-to-run noise);
// every other byte of a decision record must match.
std::string strip_wallclock(std::string line) {
  const std::string key = "\"think_us\":";
  const std::size_t pos = line.find(key);
  if (pos == std::string::npos) return line;
  std::size_t end = pos + key.size();
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end < line.size() && line[end] == ',') ++end;
  return line.erase(pos, end - pos);
}

// The telemetry stream — run record, every decision record (objective
// trajectory included), every lifecycle event — is byte-identical between
// the plain run and the federation of one, except the wall-clock field.
// In particular the run record must NOT carry a "clusters" field and no
// record a "cluster" tag: a single-member federation writes the exact
// pre-federation schema.
TEST(FederationDifferential, TelemetryStreamIdenticalModuloWallclock) {
  std::vector<std::string> plain_lines;
  std::vector<std::string> fed_lines;
  {
    obs::Telemetry tel(std::make_unique<CaptureSink>(plain_lines));
    plain_run("DDS/lxf/dynB", true, 0, &diff_faults(), &tel);
    tel.flush();
  }
  {
    obs::Telemetry tel(std::make_unique<CaptureSink>(fed_lines));
    fed_of_one_run("DDS/lxf/dynB", true, 0, &diff_faults(), &tel,
                   "least-loaded");
    tel.flush();
  }
  ASSERT_EQ(plain_lines.size(), fed_lines.size());
  ASSERT_GT(plain_lines.size(), 10u);
  for (std::size_t i = 0; i < plain_lines.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(strip_wallclock(fed_lines[i]), strip_wallclock(plain_lines[i]));
    EXPECT_EQ(fed_lines[i].find("\"cluster\""), std::string::npos);
    EXPECT_EQ(fed_lines[i].find("\"clusters\""), std::string::npos);
    EXPECT_EQ(fed_lines[i].find("\"migrate\""), std::string::npos);
  }
}

}  // namespace
}  // namespace sbs
