#include "jobs/trace.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace sbs {
namespace {

using test::job;
using test::trace_of;

TEST(Trace, NormalizeSortsAndReassignsIds) {
  Trace t;
  t.capacity = 8;
  t.jobs = {job(5, 100, 1, 10), job(9, 50, 1, 10), job(2, 100, 1, 10)};
  t.normalize();
  EXPECT_EQ(t.jobs[0].submit, 50);
  EXPECT_EQ(t.jobs[0].id, 0);
  EXPECT_EQ(t.jobs[1].id, 1);
  EXPECT_EQ(t.jobs[2].id, 2);
  // Stable tie-break by original id: 2 (orig) before 5 (orig).
  EXPECT_EQ(t.jobs[1].submit, 100);
}

TEST(Trace, ValidateAcceptsGoodTrace) {
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 50, 8, 200)}, 8);
  EXPECT_NO_THROW(t.validate());
}

TEST(Trace, ValidateRejectsZeroRuntime) {
  Trace t = trace_of({job(0, 0, 1, 100)}, 4);
  t.jobs[0].runtime = 0;
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsZeroRequested) {
  Trace t = trace_of({job(0, 0, 1, 100)}, 4);
  t.jobs[0].requested = 0;
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsWideJob) {
  Trace t = trace_of({job(0, 0, 9, 100)}, 8);
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsUnsorted) {
  Trace t = trace_of({job(0, 0, 1, 10), job(1, 5, 1, 10)}, 4);
  std::swap(t.jobs[0], t.jobs[1]);
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsBadCapacity) {
  Trace t;
  t.capacity = 0;
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, InWindowCountSkipsWarmup) {
  const Trace t = trace_of(
      {job(0, -10, 1, 5, 0, false), job(1, 0, 1, 5), job(2, 5, 1, 5)}, 4);
  EXPECT_EQ(t.in_window_count(), 2u);
}

TEST(Trace, OfferedLoadComputesNodeSecondsOverWindow) {
  // 4 nodes * 100 s demand on an 8-node machine over 100 s -> load 0.5.
  Trace t = trace_of({job(0, 0, 4, 100)}, 8, 0, 100);
  EXPECT_DOUBLE_EQ(t.offered_load(), 0.5);
}

TEST(Trace, OfferedLoadIgnoresOutOfWindowJobs) {
  Trace t = trace_of({job(0, 0, 4, 100), job(1, 0, 4, 100, 0, false)}, 8, 0, 100);
  EXPECT_DOUBLE_EQ(t.offered_load(), 0.5);
}

TEST(RescaleArrivals, ShrinksSubmitTimesAndWindow) {
  Trace t = trace_of({job(0, 100, 2, 50), job(1, 200, 2, 50)}, 8, 0, 400);
  const Trace half = rescale_arrivals(t, 0.5);
  EXPECT_EQ(half.jobs[0].submit, 50);
  EXPECT_EQ(half.jobs[1].submit, 100);
  EXPECT_EQ(half.window_end, 200);
  // Runtimes and widths untouched.
  EXPECT_EQ(half.jobs[0].runtime, 50);
  EXPECT_EQ(half.jobs[0].nodes, 2);
}

TEST(RescaleArrivals, DoublesOfferedLoadWhenHalved) {
  Trace t = trace_of({job(0, 0, 4, 100)}, 8, 0, 200);
  const double before = t.offered_load();
  const Trace half = rescale_arrivals(t, 0.5);
  EXPECT_NEAR(half.offered_load(), 2.0 * before, 1e-12);
}

TEST(RescaleToLoad, HitsTarget) {
  Trace t = trace_of({job(0, 0, 4, 100), job(1, 100, 4, 100)}, 8, 0, 400);
  const Trace scaled = rescale_to_load(t, 0.9);
  EXPECT_NEAR(scaled.offered_load(), 0.9, 0.01);
}

TEST(RescaleToLoad, RejectsEmptyDemand) {
  Trace t;
  t.capacity = 8;
  t.window_begin = 0;
  t.window_end = 100;
  EXPECT_THROW(rescale_to_load(t, 0.9), Error);
}

TEST(RescaleArrivals, RejectsNonPositiveFactor) {
  Trace t = trace_of({job(0, 0, 1, 10)}, 4);
  EXPECT_THROW(rescale_arrivals(t, 0.0), Error);
}

TEST(JobDemand, NodesTimesRuntime) {
  EXPECT_DOUBLE_EQ(job_demand(job(0, 0, 4, 250)), 1000.0);
}

}  // namespace
}  // namespace sbs
