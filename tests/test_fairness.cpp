#include "metrics/fairness.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace sbs {
namespace {

using test::job;

JobOutcome outcome(Job j, Time start) {
  JobOutcome o;
  o.job = j;
  o.start = start;
  o.end = start + j.runtime;
  return o;
}

TEST(Gini, PerfectEqualityIsZero) {
  EXPECT_DOUBLE_EQ(gini(std::vector<double>{5, 5, 5, 5}), 0.0);
}

TEST(Gini, EmptyAndAllZero) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  EXPECT_DOUBLE_EQ(gini(std::vector<double>{0, 0, 0}), 0.0);
}

TEST(Gini, ConcentrationApproachesOne) {
  std::vector<double> v(100, 0.0);
  v.back() = 1000.0;
  EXPECT_GT(gini(v), 0.98);
}

TEST(Gini, KnownTwoValueCase) {
  // {0, 1}: Gini = 0.5 for n = 2.
  EXPECT_DOUBLE_EQ(gini(std::vector<double>{0, 1}), 0.5);
}

TEST(Gini, OrderInvariant) {
  EXPECT_DOUBLE_EQ(gini(std::vector<double>{1, 2, 3}),
                   gini(std::vector<double>{3, 1, 2}));
}

TEST(Gini, RejectsNegativeValues) {
  EXPECT_THROW(gini(std::vector<double>{-1, 2}), Error);
}

TEST(Jain, PerfectFairnessIsOne) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{3, 3, 3}), 1.0);
}

TEST(Jain, MaximallyUnfairIsOneOverN) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{0, 0, 0, 8}), 0.25);
}

TEST(Jain, EmptyAndZeroAreFair) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{0, 0}), 1.0);
}

TEST(FairnessSummary, ZeroWaitWorkloadIsPerfectlyFair) {
  std::vector<JobOutcome> outs = {outcome(job(0, 0, 1, kHour), 0),
                                  outcome(job(1, 0, 1, 2 * kHour), 0)};
  const FairnessSummary s = fairness_summary(outs);
  EXPECT_DOUBLE_EQ(s.gini_wait, 0.0);
  EXPECT_DOUBLE_EQ(s.gini_bsld, 0.0);
  EXPECT_DOUBLE_EQ(s.jain_bsld, 1.0);
  EXPECT_DOUBLE_EQ(s.tail5_bsld, 1.0);
}

TEST(FairnessSummary, StarvationShowsInGiniAndTail) {
  // Nineteen jobs served instantly, one starved for 100 hours.
  std::vector<JobOutcome> outs;
  for (int i = 0; i < 19; ++i) outs.push_back(outcome(job(i, 0, 1, kHour), 0));
  outs.push_back(outcome(job(19, 0, 1, kHour), 100 * kHour));
  const FairnessSummary s = fairness_summary(outs);
  EXPECT_GT(s.gini_wait, 0.9);
  EXPECT_GT(s.gini_bsld, 0.9);
  EXPECT_LT(s.jain_bsld, 0.3);
  EXPECT_DOUBLE_EQ(s.tail5_bsld, 101.0);  // worst 5% = the starved job
}

TEST(FairnessSummary, SkipsOutOfWindowJobs) {
  std::vector<JobOutcome> outs = {
      outcome(job(0, 0, 1, kHour), 0),
      outcome(job(1, 0, 1, kHour, 0, false), 500 * kHour)};
  const FairnessSummary s = fairness_summary(outs);
  EXPECT_DOUBLE_EQ(s.gini_wait, 0.0);
}

TEST(FairnessSummary, EmptyInput) {
  const FairnessSummary s = fairness_summary({});
  EXPECT_DOUBLE_EQ(s.tail5_bsld, 0.0);
  EXPECT_DOUBLE_EQ(s.jain_bsld, 1.0);
}

}  // namespace
}  // namespace sbs
