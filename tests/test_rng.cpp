#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace sbs {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(77);
  Rng child1 = parent.fork(9);
  parent.next();
  parent.next();
  Rng child2 = parent.fork(9);
  // fork() derives from the seed, not the current state.
  EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(77);
  Rng a = parent.fork(1), b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values occur
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
}

TEST(Rng, LogUniformWithinBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.log_uniform(10.0, 1000.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1000.0 * (1 + 1e-12));
  }
}

TEST(Rng, LogUniformMedianIsGeometricMean) {
  Rng rng(13);
  std::vector<double> vs;
  for (int i = 0; i < 20001; ++i) vs.push_back(rng.log_uniform(1.0, 10000.0));
  std::nth_element(vs.begin(), vs.begin() + 10000, vs.end());
  EXPECT_NEAR(vs[10000], 100.0, 10.0);  // sqrt(1 * 10000)
}

TEST(Rng, LogUniformRejectsNonPositive) {
  Rng rng(1);
  EXPECT_THROW(rng.log_uniform(0.0, 10.0), Error);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(29);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::size_t v = rng.index(4);
    EXPECT_LT(v, 4u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

TEST(Splitmix, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

}  // namespace
}  // namespace sbs
