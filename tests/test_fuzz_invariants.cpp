// Seeded random-workload fuzzer: every iteration draws a workload (a
// scaled synthetic month or an adversarial hand-rolled trace), a policy,
// and optionally a fault schedule, simulates it, and asserts the machine's
// physics — no job starts before submission, every completed job runs
// exactly its runtime, node usage never exceeds capacity, fault accounting
// balances. A second layer fuzzes ResourceProfile operation sequences
// directly. Iteration count defaults low for the tier-1 loop and scales up
// in scheduled CI via the SBS_FUZZ_ITERS environment variable (the
// sanitizer jobs run hundreds of iterations).
//
// Every assertion message carries the iteration seed, so any failure is
// reproducible by pinning that seed in a unit test.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "cluster/resource_profile.hpp"
#include "core/search.hpp"
#include "exp/policy_factory.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace sbs {
namespace {

std::uint64_t fuzz_iters() {
  if (const char* env = std::getenv("SBS_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 8;  // tier-1 default: seconds, not minutes
}

// The policy pool rotates across iterations; search policies run with a
// small node budget so a fuzz iteration stays cheap.
const char* const kPolicies[] = {
    "FCFS-BF",       "LXF-BF",          "Slack-BF",
    "Selective-BF",  "MultiQueue-aged", "DDS/lxf/dynB",
    "LDS/fcfs/dynB", "DFS/lxf/dynB",    "DDS/lxf/dynB+fs",
};
constexpr std::size_t kPolicyCount = std::size(kPolicies);

/// Adversarial hand-rolled trace: extreme widths (1 node and the full
/// machine), runtimes from one second to days, simultaneous submissions,
/// occasional requested < runtime (public SWF traces contain those), and a
/// burst of identical twins.
Trace adversarial_trace(std::uint64_t seed) {
  Rng rng(seed);
  const int capacity = static_cast<int>(rng.uniform_int(4, 128));
  const std::size_t count = static_cast<std::size_t>(rng.uniform_int(20, 60));
  std::vector<Job> jobs;
  Time submit = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (!rng.bernoulli(0.25)) submit += static_cast<Time>(rng.uniform_int(0, 2 * kHour));
    Job j;
    j.submit = submit;
    switch (rng.uniform_int(0, 3)) {
      case 0: j.nodes = 1; break;
      case 1: j.nodes = capacity; break;
      default: j.nodes = static_cast<int>(rng.uniform_int(1, capacity));
    }
    switch (rng.uniform_int(0, 3)) {
      case 0: j.runtime = 1; break;
      case 1: j.runtime = static_cast<Time>(rng.uniform_int(20, 60)) * kHour; break;
      default: j.runtime = static_cast<Time>(rng.uniform_int(kMinute, 6 * kHour));
    }
    j.requested = rng.bernoulli(0.15)
                      ? std::max<Time>(1, j.runtime / 2)  // under-request
                      : j.runtime * static_cast<Time>(rng.uniform_int(1, 8));
    j.user = static_cast<int>(rng.uniform_int(0, 5));
    jobs.push_back(j);
    if (rng.bernoulli(0.2)) jobs.push_back(j);  // identical twin
  }
  Trace t = test::trace_of(std::move(jobs), capacity);
  t.name = "fuzz-" + std::to_string(seed);
  return t;
}

/// A scaled-down synthetic month with a randomized generator seed and
/// burst setting — realistic marginals, fuzzed realization.
Trace month_trace(std::uint64_t seed) {
  Rng rng(seed);
  const char* const months[] = {"6/03", "7/03", "9/03", "10/03", "1/04"};
  GeneratorConfig gen;
  gen.seed = seed;
  gen.job_scale = 0.02;
  gen.warmup_cooldown = rng.bernoulli(0.5);
  gen.arrivals.burst_fraction = rng.bernoulli(0.5) ? 0.3 : 0.0;
  return generate_month(months[rng.index(5)], gen);
}

/// Fault-free machine physics. `outcomes.size() == jobs.size()`, every job
/// completes, runs exactly its runtime at or after submission, and the
/// capacity envelope holds at every instant.
void check_fault_free(const Trace& trace, const SimResult& result,
                      const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(result.outcomes.size(), trace.jobs.size());
  for (const auto& o : result.outcomes) {
    EXPECT_TRUE(o.completed);
    EXPECT_EQ(o.requeue_count, 0);
    EXPECT_EQ(o.lost_node_seconds, 0);
  }
  EXPECT_NO_THROW(test::check_feasible(result.outcomes, trace.capacity));
  EXPECT_EQ(result.fault_stats.node_failures, 0u);
  EXPECT_EQ(result.fault_stats.jobs_killed, 0u);
  EXPECT_EQ(result.fault_stats.min_capacity, trace.capacity);
}

/// Relaxed physics under fault injection: completed jobs still obey the
/// machine (the final attempt's start/end are the recorded ones), the
/// capacity envelope never exceeds the full machine, and the fault
/// counters balance.
void check_with_faults(const Trace& trace, const SimResult& result,
                       RequeuePolicy requeue, const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(result.outcomes.size(), trace.jobs.size());
  std::vector<JobOutcome> completed;
  for (const auto& o : result.outcomes) {
    if (!o.completed) continue;
    completed.push_back(o);
    EXPECT_GE(o.lost_node_seconds, 0);
  }
  EXPECT_NO_THROW(test::check_feasible(completed, trace.capacity));

  const FaultStats& f = result.fault_stats;
  EXPECT_EQ(f.jobs_killed, f.jobs_requeued + f.jobs_dropped);
  EXPECT_LE(f.node_recoveries, f.node_failures);
  EXPECT_GE(f.min_capacity, 1);  // the injector never downs the whole machine
  EXPECT_LE(f.min_capacity, trace.capacity);
  if (requeue == RequeuePolicy::Resubmit) {
    EXPECT_EQ(f.jobs_dropped, 0u);
    // Repairs always restore full capacity, so a resubmit run drains.
    for (const auto& o : result.outcomes) EXPECT_TRUE(o.completed);
  } else {
    EXPECT_EQ(f.jobs_requeued, 0u);
    EXPECT_EQ(completed.size() + f.jobs_dropped + f.jobs_unstarted,
              result.outcomes.size());
  }
}

TEST(FuzzInvariants, RandomWorkloadsFaultFree) {
  const std::uint64_t iters = fuzz_iters();
  for (std::uint64_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = 0xF00D + it * 7919;
    Rng rng(seed);
    const Trace trace =
        rng.bernoulli(0.5) ? adversarial_trace(seed) : month_trace(seed);
    ASSERT_NO_THROW(trace.validate());
    const char* spec = kPolicies[rng.index(kPolicyCount)];
    auto policy = make_policy(spec, /*node_limit=*/150);
    SimConfig sim;
    sim.use_requested_runtime = rng.bernoulli(0.3);
    const SimResult result = simulate(trace, *policy, sim);
    check_fault_free(trace, result,
                     "seed=" + std::to_string(seed) + " policy=" + spec +
                         " trace=" + trace.name);
  }
}

TEST(FuzzInvariants, RandomWorkloadsUnderFaultInjection) {
  const std::uint64_t iters = fuzz_iters();
  for (std::uint64_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = 0xBEEF + it * 6271;
    Rng rng(seed);
    const Trace trace =
        rng.bernoulli(0.5) ? adversarial_trace(seed) : month_trace(seed);
    const char* spec = kPolicies[rng.index(kPolicyCount)];
    auto policy = make_policy(spec, /*node_limit=*/150);

    FaultSpec fs;
    fs.seed = seed;
    fs.node_mtbf = static_cast<Time>(rng.uniform_int(6, 48)) * kHour;
    fs.node_mttr = static_cast<Time>(rng.uniform_int(1, 8)) * kHour;
    fs.min_block = 1;
    fs.max_block = std::max(1, trace.capacity / 8);
    fs.job_kill_mtbf = rng.bernoulli(0.5)
                           ? static_cast<Time>(rng.uniform_int(12, 72)) * kHour
                           : 0;
    const Time horizon = trace.jobs.empty()
                             ? 0
                             : trace.jobs.back().submit + 7 * 24 * kHour;
    const FaultInjector faults =
        FaultInjector::from_spec(fs, 0, horizon, trace.capacity);

    SimConfig sim;
    sim.faults = &faults;
    sim.requeue =
        rng.bernoulli(0.7) ? RequeuePolicy::Resubmit : RequeuePolicy::Drop;
    const SimResult result = simulate(trace, *policy, sim);
    check_with_faults(trace, result, sim.requeue,
                      "seed=" + std::to_string(seed) + " policy=" + spec +
                          " trace=" + trace.name);
  }
}

// Dominance-pruning safety properties (SearchConfig::dominance): neither
// the twin skip nor the frozen-bound cut may ever remove a strictly
// improving completion, so on any random decision point and at ANY node
// budget the pruned search's best objective is never worse than the
// unpruned search's at the same budget — and when both runs exhaust
// their (differently sized) trees, the objectives are exactly equal: the
// reduced tree keeps a value-identical canonical representative of every
// pruned permutation. Run across algorithms, branchings and thread
// counts; pruned-node counters must be zero exactly when the knob is
// off.
TEST(FuzzInvariants, DominancePruningNeverWorsensEqualBudgetObjective) {
  const std::uint64_t iters = fuzz_iters();
  const SearchAlgo kAlgos[] = {SearchAlgo::Lds, SearchAlgo::Dds,
                               SearchAlgo::Dfs};
  const Branching kBranchings[] = {Branching::Fcfs, Branching::Lxf};
  for (std::uint64_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = 0xD0D0 + it * 3571;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    test::ProblemBuilder b(/*capacity=*/static_cast<int>(rng.uniform_int(8, 96)),
                           /*now=*/static_cast<Time>(36000));
    const std::size_t jobs = static_cast<std::size_t>(rng.uniform_int(2, 9));
    for (std::size_t i = 0; i < jobs; ++i) {
      const Time submit = static_cast<Time>(rng.uniform_int(0, 36000));
      const int nodes = static_cast<int>(rng.uniform_int(1, 8));
      const Time runtime =
          static_cast<Time>(rng.uniform_int(kMinute, 8 * kHour));
      const Time bound = static_cast<Time>(rng.uniform_int(1, 40)) * kHour;
      b.wait(submit, nodes, runtime, bound);
      if (rng.bernoulli(0.4)) b.wait(submit, nodes, runtime, bound);  // twin
    }
    const SearchProblem problem = b.build();

    SearchConfig cfg;
    cfg.algo = kAlgos[rng.index(3)];
    cfg.branching = kBranchings[rng.index(2)];
    cfg.threads = rng.bernoulli(0.3) ? 4 : 0;

    // Budget cut-point sweep, ending with exhaustion.
    for (const std::size_t budget :
         {std::size_t{1}, std::size_t{10}, std::size_t{75}, std::size_t{500},
          std::size_t{200000}}) {
      SCOPED_TRACE("budget=" + std::to_string(budget));
      cfg.node_limit = budget;
      cfg.dominance = false;
      const SearchResult off = run_search(problem, cfg);
      EXPECT_EQ(off.pruned_twins, 0u);
      EXPECT_EQ(off.pruned_bound, 0u);
      cfg.dominance = true;
      const SearchResult on = run_search(problem, cfg);

      // Equal budget: pruning may only help.
      EXPECT_FALSE(cfg.comparator.less(off.value, on.value))
          << "pruned search returned a worse objective at equal budget: "
          << "off=(" << off.value.excess_h << ", " << off.value.avg_bsld
          << ") on=(" << on.value.excess_h << ", " << on.value.avg_bsld << ")";
      // Exhaustion of both trees: exactly equal (the canonical twin of the
      // unpruned winner has an identical objective, and the bound cut only
      // discards paths that cannot beat the incumbent).
      if (off.exhausted && on.exhausted) {
        EXPECT_EQ(off.value.excess_h, on.value.excess_h);
        EXPECT_EQ(off.value.avg_bsld, on.value.avg_bsld);
        EXPECT_LE(on.nodes_visited, off.nodes_visited);
      }
    }
  }
}

// Direct ResourceProfile operation fuzz: random earliest_start /
// reserve / reserve_logged / undo sequences must keep the step vector
// well-formed — strictly increasing times, free counts within
// [0, capacity] — and earliest_start must return a start no earlier than
// requested at which the job actually fits.
TEST(FuzzInvariants, ResourceProfileOperationSequences) {
  const std::uint64_t iters = fuzz_iters();
  for (std::uint64_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = 0xCAFE + it * 4099;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const int capacity = static_cast<int>(rng.uniform_int(1, 96));
    ResourceProfile profile(capacity, static_cast<Time>(rng.uniform_int(0, 5000)));
    std::vector<ResourceProfile::ReserveUndo> undos;

    for (int op = 0; op < 200; ++op) {
      const int nodes = static_cast<int>(rng.uniform_int(1, capacity));
      const Time duration = static_cast<Time>(rng.uniform_int(1, 100000));
      const Time from = static_cast<Time>(rng.uniform_int(0, 200000));
      const Time start = profile.earliest_start(from, nodes, duration);
      ASSERT_GE(start, from);

      // The job must actually fit over [start, start + duration): every
      // step whose active interval intersects the job's window has room.
      // (Step i's free count holds from steps[i].time to the next step.)
      {
        const auto& steps = profile.steps();
        for (std::size_t i = 0; i < steps.size(); ++i) {
          const Time lo = steps[i].time;
          const Time hi = i + 1 < steps.size()
                              ? steps[i + 1].time
                              : std::numeric_limits<Time>::max();
          if (hi <= start || lo >= start + duration) continue;
          ASSERT_GE(steps[i].free, nodes) << "at step time " << lo;
        }
      }

      if (rng.bernoulli(0.5)) {
        undos.push_back(profile.reserve_logged(start, nodes, duration));
      } else {
        profile.reserve(start, nodes, duration);
        undos.clear();  // plain reserves are permanent; LIFO chain broken
      }
      if (!undos.empty() && rng.bernoulli(0.3)) {
        profile.undo(undos.back());
        undos.pop_back();
      }

      // Step-vector well-formedness after every operation.
      const auto& steps = profile.steps();
      for (std::size_t i = 0; i < steps.size(); ++i) {
        ASSERT_GE(steps[i].free, 0);
        ASSERT_LE(steps[i].free, capacity);
        if (i > 0) {
          ASSERT_LT(steps[i - 1].time, steps[i].time);
        }
      }
    }
  }
}

}  // namespace
}  // namespace sbs
