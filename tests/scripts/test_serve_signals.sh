#!/usr/bin/env bash
# Signal-path contract of `sbsched serve`:
#
#   sigterm — SIGTERM mid-burst is a graceful drain: the daemon finishes
#             the queued work in virtual time, writes the final drain and
#             service telemetry records, and exits 0 with no torn JSONL.
#   sigkill — SIGKILL is a crash: the periodic checkpoint survives, and a
#             restart with --resume restores the admission queue (running
#             and waiting jobs alike) before serving again.
#
# Usage: test_serve_signals.sh <sigterm|sigkill> <sbsched> <sbsched_loadgen>
set -u

MODE=${1:?mode (sigterm|sigkill) required}
SBSCHED=${2:?path to sbsched required}
LOADGEN=${3:?path to sbsched_loadgen required}

DIR=$(mktemp -d "${TMPDIR:-/tmp}/sbs_signals.XXXXXX")
SOCK="$DIR/serve.sock"
SERVE_PID=""
LOADGEN_PID=""

cleanup() {
  [ -n "$LOADGEN_PID" ] && kill -9 "$LOADGEN_PID" 2>/dev/null
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL($MODE): $*" >&2
  exit 1
}

# Tiny protocol client: one request per invocation, JSON response on
# stdout. Mirrors the 4-byte big-endian length framing of protocol.hpp.
client() {
  python3 - "$SOCK" "$1" <<'EOF'
import json, socket, struct, sys
sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
sock.settimeout(10)
sock.connect(sys.argv[1])
payload = sys.argv[2].encode()
sock.sendall(struct.pack(">I", len(payload)) + payload)
hdr = b""
while len(hdr) < 4:
    chunk = sock.recv(4 - len(hdr))
    if not chunk:
        raise SystemExit("server closed mid-header")
    hdr += chunk
n = struct.unpack(">I", hdr)[0]
buf = b""
while len(buf) < n:
    chunk = sock.recv(n - len(buf))
    if not chunk:
        raise SystemExit("server closed mid-payload")
    buf += chunk
print(buf.decode())
EOF
}

wait_for_socket() {
  for _ in $(seq 1 200); do
    if client '{"op":"stats","id":0}' >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "$SERVE_PID" 2>/dev/null || fail "serve died before readiness"
    sleep 0.05
  done
  fail "serve socket never became ready"
}

stats_field() {
  client '{"op":"stats","id":0}' | python3 -c \
    "import json,sys; print(json.load(sys.stdin)[sys.argv[1]])" "$1"
}

case "$MODE" in
  sigterm)
    TELEM="$DIR/serve.jsonl"
    "$SBSCHED" serve --socket="$SOCK" --capacity=16 --time-scale=5000 \
        --batch-ms=1 --telemetry="$TELEM" >"$DIR/serve.log" 2>&1 &
    SERVE_PID=$!
    wait_for_socket

    # Open-loop burst; the generator keeps offering work while we pull the
    # rug out, so the drain really happens mid-traffic. Its exit status is
    # irrelevant — the server closing on it mid-sweep is expected.
    "$LOADGEN" --socket="$SOCK" --rate-start=40 --rate-stop=40 \
        --step-seconds=30 --settle-ms=0 --nodes-min=1 --nodes-max=8 \
        --runtime-min=60 --runtime-max=600 --drain=off \
        --out="$DIR/loadgen.json" >/dev/null 2>&1 &
    LOADGEN_PID=$!

    sleep 1
    ADMITTED=$(stats_field admitted)
    [ "$ADMITTED" -gt 0 ] || fail "no jobs admitted before SIGTERM"

    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID"
    RC=$?
    SERVE_PID=""
    [ "$RC" -eq 0 ] || fail "SIGTERM drain exited $RC, want 0"

    kill "$LOADGEN_PID" 2>/dev/null
    wait "$LOADGEN_PID" 2>/dev/null
    LOADGEN_PID=""

    # Every telemetry line must parse (no torn JSONL) and the stream must
    # end with the drain + service summary records a clean exit writes.
    python3 - "$TELEM" <<'EOF'
import json, sys
records = []
with open(sys.argv[1], "rb") as f:
    for i, line in enumerate(f.read().split(b"\n")):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            raise SystemExit(f"torn telemetry record at line {i + 1}")
types = [r.get("type") for r in records]
if "drain" not in types:
    raise SystemExit("no drain record after SIGTERM")
if types[-1] != "service":
    raise SystemExit(f"stream ends with {types[-1]!r}, want 'service'")
drains = [r for r in records if r.get("type") == "drain"]
if drains[-1].get("phase") != "complete":
    raise SystemExit("final drain record is not phase=complete")
EOF
    [ $? -eq 0 ] || fail "telemetry stream check failed"

    # The reporter reconciles decision deltas against the service record;
    # a clean exit here certifies the whole stream.
    "$SBSCHED" report --telemetry="$TELEM" >/dev/null \
        || fail "sbsched report rejected the drained telemetry"
    ;;

  sigkill)
    CKPT="$DIR/serve.ckpt"
    # time-scale=1 keeps the submitted jobs effectively frozen, so the
    # checkpoint we crash on still holds 2 running + 2 waiting.
    "$SBSCHED" serve --socket="$SOCK" --capacity=4 --time-scale=1 \
        --batch-ms=1 --checkpoint="$CKPT" --checkpoint-every=1 \
        >"$DIR/serve.log" 2>&1 &
    SERVE_PID=$!
    wait_for_socket

    for i in 0 1 2 3; do
      OUT=$(client "{\"op\":\"submit\",\"id\":$i,\"nodes\":2,\"runtime\":1000000,\"priority\":3}")
      echo "$OUT" | grep -q '"status":"accepted"' \
          || fail "submit $i not accepted: $OUT"
    done

    for _ in $(seq 1 200); do
      RUNNING=$(stats_field running)
      DEPTH=$(stats_field queue_depth)
      CKPTS=$(stats_field checkpoints)
      if [ "$RUNNING" -eq 2 ] && [ "$DEPTH" -eq 2 ] && [ "$CKPTS" -ge 1 ]; then
        break
      fi
      sleep 0.05
    done
    [ "$RUNNING" -eq 2 ] || fail "expected 2 running before crash, got $RUNNING"
    [ "$DEPTH" -eq 2 ] || fail "expected 2 queued before crash, got $DEPTH"

    kill -9 "$SERVE_PID"
    wait "$SERVE_PID" 2>/dev/null
    SERVE_PID=""
    [ -s "$CKPT" ] || fail "no checkpoint survived SIGKILL"

    SOCK="$DIR/serve2.sock"
    "$SBSCHED" serve --socket="$SOCK" --capacity=4 --time-scale=5000 \
        --batch-ms=1 --resume="$CKPT" >"$DIR/serve2.log" 2>&1 &
    SERVE_PID=$!
    wait_for_socket

    ADMITTED=$(stats_field admitted)
    RUNNING=$(stats_field running)
    DEPTH=$(stats_field queue_depth)
    [ "$ADMITTED" -eq 4 ] || fail "resume lost admissions: $ADMITTED, want 4"
    [ $((RUNNING + DEPTH)) -eq 4 ] \
        || fail "resume lost queued work: running=$RUNNING depth=$DEPTH, want 4 total"

    # The restored queue must drain to completion, not just be counted.
    client '{"op":"drain","id":9}' >/dev/null || fail "drain request failed"
    wait "$SERVE_PID"
    RC=$?
    SERVE_PID=""
    [ "$RC" -eq 0 ] || fail "post-resume drain exited $RC, want 0"
    ;;

  *)
    fail "unknown mode '$MODE'"
    ;;
esac

echo "PASS($MODE)"
exit 0
