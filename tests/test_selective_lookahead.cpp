#include <gtest/gtest.h>

#include "policies/backfill.hpp"
#include "policies/lookahead.hpp"
#include "policies/selective.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::check_feasible;
using test::job;
using test::trace_of;

TEST(Selective, NameAndInitialThreshold) {
  SelectiveBackfillScheduler s;
  EXPECT_EQ(s.name(), "Selective-backfill");
  EXPECT_DOUBLE_EQ(s.current_threshold(), 1.5);  // floor before any start
}

TEST(Selective, FixedThresholdUsedWhenPositive) {
  SelectiveConfig cfg;
  cfg.threshold = 7.0;
  SelectiveBackfillScheduler s(cfg);
  EXPECT_DOUBLE_EQ(s.current_threshold(), 7.0);
}

TEST(Selective, FreshJobsDoNotGetReservations) {
  // j1 is wide and fresh (slowdown 1 < threshold): it gets NO reservation,
  // so the narrow long j2 backfills in front of it.
  const Trace t = trace_of({job(0, 0, 3, 100), job(1, 10, 4, 100),
                            job(2, 20, 1, 95)},
                           4);
  SelectiveBackfillScheduler s;
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[2].start, 20);
  EXPECT_GE(r.outcomes[1].start, 115);
  check_feasible(r.outcomes, 4);
}

TEST(Selective, StarvedJobGetsReservation) {
  // Same shape, but j1 has waited long enough that its expansion factor
  // crosses the fixed threshold: the reservation protects it.
  const Trace t = trace_of({job(0, 0, 3, 1000), job(1, 10, 4, 100),
                            job(2, 900, 1, 950)},
                           4);
  SelectiveConfig cfg;
  cfg.threshold = 2.0;  // j1's xfactor at t=900: (890 + 100) / 100 = 9.9
  SelectiveBackfillScheduler s(cfg);
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[1].start, 1000);    // protected
  EXPECT_GE(r.outcomes[2].start, 1100);    // could not jump
  check_feasible(r.outcomes, 4);
}

TEST(Lookahead, Name) {
  LookaheadScheduler s;
  EXPECT_EQ(s.name(), "Lookahead");
}

TEST(Lookahead, PacksBetterThanGreedyFcfsOrder) {
  // 4 free nodes; queue: j1 (3 nodes), j2 (2 nodes), j3 (2 nodes), all
  // short. Greedy FCFS backfill starts j1 (3 nodes, 1 idle); lookahead
  // starts {j2, j3} = 4 nodes. j0 keeps the machine busy first so all
  // three are queued at the drain event, and j1's FCFS reservation after
  // the drain is not delayed because j2/j3 are short.
  const Trace t = trace_of({job(0, 0, 4, 100), job(1, 1, 3, 1000),
                            job(2, 2, 2, 10), job(3, 3, 2, 10)},
                           4);
  LookaheadScheduler s;
  const SimResult r = simulate(t, s);
  // At t=100 all of j1..j3 are waiting. Head job j1 can start now, so the
  // FCFS prefix takes it; j2 backfills next to it? No: j1 uses 3 of 4.
  // Lookahead keeps FCFS for the head, so j1 starts at 100.
  EXPECT_EQ(r.outcomes[1].start, 100);
  check_feasible(r.outcomes, 4);
}

TEST(Lookahead, MaximizesUtilizationBehindBlockedHead) {
  // j0 holds 5/8 nodes until t=200. Head j1 (8 nodes) is blocked with a
  // reservation at 200. Backfill candidates arrive together at t=2:
  // j2 (2 nodes, FCFS-first) and j3 (3 nodes). Greedy FCFS backfill would
  // take j2 and leave 1 node idle; the lookahead DP picks j3 (3 nodes).
  const Trace t = trace_of({job(0, 0, 5, 200), job(1, 1, 8, 1000),
                            job(2, 2, 2, 100), job(3, 2, 3, 100)},
                           8);
  LookaheadScheduler s;
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[3].start, 2);    // knapsack winner
  EXPECT_GT(r.outcomes[2].start, 2);    // FCFS-first candidate lost
  EXPECT_EQ(r.outcomes[1].start, 200);  // head reservation not delayed
  check_feasible(r.outcomes, 8);

  // Contrast: plain FCFS backfill takes j2 (FCFS order) and strands a node.
  BackfillConfig cfg;
  BackfillScheduler greedy(cfg);
  const SimResult g = simulate(t, greedy);
  EXPECT_EQ(g.outcomes[2].start, 2);
  EXPECT_GT(g.outcomes[3].start, 2);
}

TEST(Lookahead, BackfillCannotDelayHeadReservation) {
  // A long narrow candidate crossing the shadow time may only use the
  // "extra" nodes. Head needs all 4 at t=100, extra = 0 -> no crossing
  // backfill allowed.
  const Trace t = trace_of({job(0, 0, 3, 100), job(1, 10, 4, 100),
                            job(2, 20, 1, 95)},
                           4);
  LookaheadScheduler s;
  const SimResult r = simulate(t, s);
  EXPECT_EQ(r.outcomes[1].start, 100);
  EXPECT_GE(r.outcomes[2].start, 100);
  check_feasible(r.outcomes, 4);
}

// Property: both comparators always produce feasible schedules.
class ComparatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComparatorProperty, RandomWorkloadsFeasible) {
  Rng rng(GetParam());
  std::vector<Job> jobs;
  Time submit = 0;
  for (int i = 0; i < 80; ++i) {
    submit += static_cast<Time>(rng.uniform_int(0, 200));
    jobs.push_back(job(i, submit, static_cast<int>(rng.uniform_int(1, 16)),
                       static_cast<Time>(rng.uniform_int(1, 1500))));
  }
  const Trace t = trace_of(std::move(jobs), 16);
  {
    SelectiveBackfillScheduler s;
    const SimResult r = simulate(t, s);
    EXPECT_NO_THROW(check_feasible(r.outcomes, 16));
  }
  {
    LookaheadScheduler s;
    const SimResult r = simulate(t, s);
    EXPECT_NO_THROW(check_feasible(r.outcomes, 16));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ComparatorProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace sbs
