// Whole-month conservation and feasibility invariants, swept across a
// (month x policy) grid on scaled-down workloads. These are the checks
// that make every other number in the repo trustworthy: whatever the
// policy does, the machine's physics and the workload's accounting must
// balance.

#include <gtest/gtest.h>

#include <tuple>

#include "exp/policy_factory.hpp"
#include "exp/runner.hpp"
#include "metrics/timeline.hpp"
#include "test_support.hpp"
#include "workload/generator.hpp"

namespace sbs {
namespace {

class MonthInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(MonthInvariants, ConservationAndFeasibility) {
  const auto [month, policy_spec] = GetParam();

  GeneratorConfig gen;
  gen.job_scale = 0.08;
  Trace trace = generate_month(month, gen);
  trace = rescale_to_load(trace, 0.9);

  auto policy = make_policy(policy_spec, 300);
  const SimResult result = simulate(trace, *policy);

  // 1. Every job ran: exactly its runtime, at or after submission.
  ASSERT_EQ(result.outcomes.size(), trace.jobs.size());
  double executed_node_seconds = 0.0;
  double demand_node_seconds = 0.0;
  for (const auto& o : result.outcomes) {
    EXPECT_GE(o.start, o.job.submit);
    EXPECT_EQ(o.end - o.start, o.job.runtime);
    executed_node_seconds += job_demand(o.job);
  }
  for (const auto& j : trace.jobs) demand_node_seconds += job_demand(j);

  // 2. Node-seconds are conserved: what was submitted is what ran.
  EXPECT_DOUBLE_EQ(executed_node_seconds, demand_node_seconds);

  // 3. The machine never exceeds capacity at any instant.
  EXPECT_NO_THROW(test::check_feasible(result.outcomes, trace.capacity));

  // 4. The utilization timeline ends at zero (everything drained) and its
  //    peak respects capacity.
  const auto timeline = utilization_timeline(result.outcomes);
  ASSERT_FALSE(timeline.empty());
  EXPECT_EQ(timeline.back().value, 0);
  Time horizon = timeline.back().time + 1;
  EXPECT_LE(timeline_peak(timeline, timeline.front().time, horizon),
            trace.capacity);

  // 5. Work-conservation sanity: the machine cannot be idle while the
  //    head-of-queue fits — the simulator enforces the strong version
  //    (no stall on an idle machine) internally; here we check the run
  //    completed with a finite makespan.
  EXPECT_GT(timeline.back().time, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonthInvariants,
    ::testing::Combine(
        ::testing::Values("6/03", "7/03", "10/03", "1/04", "2/04"),
        ::testing::Values("FCFS-BF", "LXF-BF", "Selective-BF", "Lookahead",
                          "Slack-BF", "Weighted-BF", "MultiQueue-aged",
                          "DDS/lxf/dynB", "LDS/fcfs/dynB", "DFS/lxf/dynB",
                          "DDS/lxf/dynB+ls", "DDS/lxf/dynB+fs")),
    [](const auto& param_info) {
      std::string name = std::string(std::get<0>(param_info.param)) + "_" +
                         std::get<1>(param_info.param);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
}  // namespace sbs
