// Quickstart: generate one synthetic NCSA month, run the two baseline
// backfill policies and the paper's headline search policy, and print the
// measures the paper plots (Figure 3 style).
//
//   ./quickstart [--month=7/03] [--scale=0.25] [--load=0] [--nodes=1000]
//
// --load=0 keeps the original offered load; any other value rescales
// arrivals (the paper's high-load experiments use --load=0.9).

#include <iostream>

#include "exp/policy_factory.hpp"
#include "exp/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  try {
    CliArgs args(argc, argv, {"month", "scale", "load", "nodes", "seed"});
    const std::string month = args.get("month", "7/03");
    const double scale = args.get_double("scale", 0.25);
    const double load = args.get_double("load", 0.0);
    const auto node_limit =
        static_cast<std::size_t>(args.get_int("nodes", 1000));

    GeneratorConfig gen;
    gen.job_scale = scale;
    gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 2005));
    Trace trace = generate_month(month, gen);
    if (load > 0.0) trace = rescale_to_load(trace, load);

    std::cout << "Month " << trace.name << ": " << trace.in_window_count()
              << " jobs in window, offered load "
              << format_double(trace.offered_load(), 3) << ", capacity "
              << trace.capacity << " nodes\n\n";

    const Thresholds thresholds = fcfs_thresholds(trace);

    Table table({"policy", "avg wait (h)", "max wait (h)", "avg bsld",
                 "total E^max (h)", "#jobs w/ E^max"});
    for (const std::string spec :
         {"FCFS-BF", "LXF-BF", "DDS/lxf/dynB"}) {
      const MonthEval eval = evaluate_spec(trace, spec, node_limit, thresholds);
      table.row()
          .add(eval.policy)
          .add(eval.summary.avg_wait_h)
          .add(eval.summary.max_wait_h)
          .add(eval.summary.avg_bounded_slowdown)
          .add(eval.e_max.total_h)
          .add(eval.e_max.count);
    }
    table.print(std::cout);
    std::cout << "\nE^max = wait in excess of this month's FCFS-backfill "
                 "maximum wait ("
              << format_double(to_hours(thresholds.max_wait), 1) << " h).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
