// SWF replay: the workflow a site administrator would use with their own
// accounting logs. Without --trace, the example first exports a synthetic
// month to SWF (showing the writer); it then reads the SWF file back and
// compares policies on it. Point --trace at any Parallel Workloads Archive
// file to run the harness on a real system's log.
//
//   ./swf_replay [--trace=/path/to/log.swf] [--procs-per-node=1]
//                [--nodes=1000] [--scale=0.2]

#include <cstdio>
#include <iostream>

#include "exp/policy_factory.hpp"
#include "exp/runner.hpp"
#include "jobs/swf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  try {
    CliArgs args(argc, argv,
                 {"trace", "procs-per-node", "nodes", "scale", "seed"});
    const auto node_limit =
        static_cast<std::size_t>(args.get_int("nodes", 1000));

    std::string path = args.get("trace", "");
    std::string temp_path;
    if (path.empty()) {
      GeneratorConfig gen;
      gen.job_scale = args.get_double("scale", 0.2);
      gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 2005));
      gen.warmup_cooldown = false;
      const Trace synthetic = generate_month("9/03", gen);
      temp_path = "swf_replay_demo.swf";
      write_swf_file(temp_path, synthetic);
      path = temp_path;
      std::cout << "No --trace given; exported synthetic month 9/03 to "
                << path << " and replaying it.\n\n";
    }

    SwfReadOptions options;
    options.procs_per_node =
        static_cast<int>(args.get_int("procs-per-node", 1));
    Trace trace = read_swf_file(path, options);
    std::cout << "Trace " << trace.name << ": " << trace.jobs.size()
              << " jobs, capacity " << trace.capacity << " nodes, load "
              << format_double(trace.offered_load(), 3) << "\n\n";

    const Thresholds thresholds = fcfs_thresholds(trace);
    Table table({"policy", "avg wait (h)", "max wait (h)", "p98 wait (h)",
                 "avg bsld"});
    for (const std::string spec :
         {"FCFS-BF", "LXF-BF", "SJF-BF", "Selective-BF", "Lookahead",
          "DDS/lxf/dynB"}) {
      const MonthEval eval = evaluate_spec(trace, spec, node_limit, thresholds);
      table.row()
          .add(eval.policy)
          .add(eval.summary.avg_wait_h)
          .add(eval.summary.max_wait_h)
          .add(eval.summary.p98_wait_h)
          .add(eval.summary.avg_bounded_slowdown);
    }
    table.print(std::cout);

    if (!temp_path.empty()) std::remove(temp_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
