// Goal tuning: the paper's pitch is that administrators declare high-level
// goals instead of hand-tuning priority weights. This example shows the
// knob they get — the target wait bound of the first objective level — by
// running DDS/lxf on one month with several fixed bounds, the dynamic
// bound, and the per-runtime bound ω(T) (the paper's §6.1 suggestion), and
// printing how the max wait tracks the bound while slowdown stays flat
// (the Figure 2 effect).
//
//   ./goal_tuning [--month=10/03] [--scale=0.25] [--nodes=1000]

#include <iostream>
#include <memory>
#include <vector>

#include "exp/policy_factory.hpp"
#include "exp/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  try {
    CliArgs args(argc, argv, {"month", "scale", "nodes", "seed"});
    GeneratorConfig gen;
    gen.job_scale = args.get_double("scale", 0.25);
    gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 2005));
    const auto node_limit =
        static_cast<std::size_t>(args.get_int("nodes", 1000));
    const Trace trace = generate_month(args.get("month", "10/03"), gen);

    std::cout << "Month " << trace.name << " (" << trace.in_window_count()
              << " jobs, load " << format_double(trace.offered_load(), 2)
              << ") — DDS/lxf under different target wait bounds\n\n";

    const Thresholds thresholds = fcfs_thresholds(trace);

    std::vector<BoundSpec> bounds = {
        BoundSpec::fixed_bound(0),
        BoundSpec::fixed_bound(25 * kHour),
        BoundSpec::fixed_bound(50 * kHour),
        BoundSpec::fixed_bound(100 * kHour),
        BoundSpec::fixed_bound(300 * kHour),
        BoundSpec::dynamic_bound(),
        BoundSpec::per_runtime(4 * kHour, 5.0, kHour, 300 * kHour),
    };

    Table table({"bound", "avg wait (h)", "max wait (h)", "avg bsld",
                 "total excess vs bound (h)"});
    for (const BoundSpec& bound : bounds) {
      auto policy = make_search_policy(SearchAlgo::Dds, Branching::Lxf, bound,
                                       node_limit);
      const MonthEval eval = evaluate_policy(trace, *policy, thresholds);
      // For fixed bounds, also report the excess w.r.t. the bound itself —
      // the quantity the first objective level actually minimizes.
      std::string excess = "-";
      if (bound.kind == BoundKind::Fixed) {
        // Re-derive from retained thresholds: excess vs the fixed ω.
        auto policy2 = make_search_policy(SearchAlgo::Dds, Branching::Lxf,
                                          bound, node_limit);
        Thresholds own{bound.fixed, bound.fixed};
        const MonthEval with_own = evaluate_policy(trace, *policy2, own);
        excess = format_double(with_own.e_max.total_h, 1);
      }
      table.row()
          .add(bound.label())
          .add(eval.summary.avg_wait_h)
          .add(eval.summary.max_wait_h)
          .add(eval.summary.avg_bounded_slowdown)
          .add(excess);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: max wait tracks the fixed bound ω (and "
                 "blows up at ω=0, which degenerates to minimizing average "
                 "wait); dynB adapts without a constant to tune.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
