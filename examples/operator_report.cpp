// Operator report: the view a cluster operator wants after switching the
// scheduler policy — machine utilization day by day, queue-depth peaks,
// and who waited — comparing the site's current policy (FCFS-backfill)
// against the search-based policy, on the same month.
//
//   ./operator_report [--month=11/03] [--scale=0.5] [--load=0.9]
//                     [--nodes=1000]

#include <algorithm>
#include <iostream>

#include "exp/policy_factory.hpp"
#include "exp/runner.hpp"
#include "metrics/fairness.hpp"
#include "metrics/job_class.hpp"
#include "metrics/timeline.hpp"
#include "metrics/users.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  try {
    CliArgs args(argc, argv, {"month", "scale", "load", "nodes", "seed"});
    GeneratorConfig gen;
    gen.job_scale = args.get_double("scale", 0.5);
    gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 2005));
    Trace trace = generate_month(args.get("month", "11/03"), gen);
    const double load = args.get_double("load", 0.9);
    if (load > 0.0) trace = rescale_to_load(trace, load);
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));

    std::cout << "Operator report — month " << trace.name << ", "
              << trace.in_window_count() << " jobs, offered load "
              << format_double(trace.offered_load(), 2) << "\n\n";

    const Thresholds th = fcfs_thresholds(trace);

    struct Run {
      std::string policy;
      MonthEval eval;
    };
    std::vector<Run> runs;
    for (const std::string spec : {"FCFS-BF", "DDS/lxf/dynB"})
      runs.push_back({spec, evaluate_spec(trace, spec, L, th, {}, true)});

    Table summary({"policy", "utilization", "avg queue", "peak queue",
                   "avg wait (h)", "max wait (h)", "avg bsld",
                   "Gini(wait)", "worst-5% bsld"});
    for (const Run& r : runs) {
      const auto queue = queue_timeline(r.eval.outcomes);
      const FairnessSummary fair = fairness_summary(r.eval.outcomes);
      summary.row()
          .add(r.eval.policy)
          .add(average_utilization(r.eval.outcomes, trace.capacity,
                                   trace.window_begin, trace.window_end))
          .add(r.eval.avg_queue_length, 1)
          .add(timeline_peak(queue, trace.window_begin, trace.window_end))
          .add(r.eval.summary.avg_wait_h)
          .add(r.eval.summary.max_wait_h)
          .add(r.eval.summary.avg_bounded_slowdown)
          .add(fair.gini_wait)
          .add(fair.tail5_bsld, 1);
    }
    summary.print(std::cout);

    std::cout << "\nHeaviest users (by consumed node-hours, "
              << runs[1].eval.policy << "):\n";
    auto users = per_user_summary(runs[1].eval.outcomes);
    std::sort(users.begin(), users.end(),
              [](const UserSummary& a, const UserSummary& b) {
                return a.demand_node_h > b.demand_node_h;
              });
    Table user_table({"user", "jobs", "node-hours", "avg wait (h)",
                      "avg bsld"});
    for (std::size_t i = 0; i < std::min<std::size_t>(5, users.size()); ++i) {
      user_table.row()
          .add(static_cast<long long>(users[i].user))
          .add(users[i].jobs)
          .add(users[i].demand_node_h, 0)
          .add(users[i].avg_wait_h)
          .add(users[i].avg_bsld);
    }
    user_table.print(std::cout);

    std::cout << "\nDaily utilization (%):\n";
    std::vector<std::string> headers = {"policy"};
    const auto days = daily_utilization(runs[0].eval.outcomes, trace.capacity,
                                        trace.window_begin, trace.window_end);
    for (std::size_t d = 0; d < days.size(); ++d) {
      std::string h = "d";  // two steps: GCC 12's restrict warning misfires
      h += std::to_string(d + 1);  // on operator+(const char*, string&&)
      headers.push_back(std::move(h));
    }
    Table daily(headers);
    for (const Run& r : runs) {
      daily.row().add(r.eval.policy);
      for (double u : daily_utilization(r.eval.outcomes, trace.capacity,
                                        trace.window_begin, trace.window_end))
        daily.add(format_double(100.0 * u, 0));
    }
    daily.print(std::cout);

    std::cout << "\nWho waits? avg wait (h) of the extreme job classes:\n";
    Table who({"policy", "short-narrow", "short-wide", "long-narrow",
               "long-wide"});
    for (const Run& r : runs) {
      const JobClassGrid g = class_grid(r.eval.outcomes);
      auto cell = [&](std::size_t n, std::size_t t) {
        return g.count[n][t] ? format_double(g.avg_wait_h[n][t], 1)
                             : std::string("-");
      };
      who.row()
          .add(r.eval.policy)
          .add(cell(0, 1))
          .add(cell(4, 1))
          .add(cell(0, 4))
          .add(cell(4, 4));
    }
    who.print(std::cout);
    std::cout << "\nBoth policies drive the same machine at the same "
                 "utilization — the difference is who carries the queue.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
