// Search anatomy: reproduces the paper's Figure 1 walkthrough on a tiny
// hand-built decision point. Four jobs wait on a small machine; we print
// the search-tree size (Figure 1(d)), then run LDS and DDS with
// increasing node budgets and show how each algorithm reaches the good
// schedule — DDS biases discrepancies high in the tree, LDS counts them.
//
//   ./search_anatomy

#include <iostream>

#include "core/schedule_builder.hpp"
#include "core/search.hpp"
#include "core/tree_size.hpp"
#include "util/table.hpp"

namespace {

// A contrived decision point where the FCFS (arrival-order) heuristic is
// wrong: the first job is huge and blocks the machine; considering the
// later short-wide jobs first packs the machine far better.
sbs::SearchProblem make_problem() {
  using namespace sbs;
  static std::vector<Job> storage;
  storage.clear();
  // id, submit, nodes, runtime, requested, in_window
  storage.push_back(Job{0, -2 * kHour, 16, 10 * kHour, 10 * kHour, true});
  storage.push_back(Job{1, -kHour, 8, kHour, kHour, true});
  storage.push_back(Job{2, -kHour / 2, 8, kHour, kHour, true});
  storage.push_back(Job{3, -kMinute, 4, 30 * kMinute, 30 * kMinute, true});

  SearchProblem p;
  p.now = 0;
  p.capacity = 16;
  p.base = ResourceProfile(16, 0);
  // Half the machine is busy for the next two hours.
  p.base.reserve(0, 8, 2 * kHour);
  for (const Job& j : storage) {
    SearchJob s;
    s.job = &j;
    s.nodes = j.nodes;
    s.estimate = j.runtime;
    s.submit = j.submit;
    s.bound = kHour;  // fixed 1-hour target wait bound
    const double est = static_cast<double>(std::max<Time>(j.runtime, kMinute));
    s.slowdown_now = (static_cast<double>(0 - j.submit) + est) / est;
    p.jobs.push_back(s);
  }
  return p;
}

}  // namespace

int main() {
  using namespace sbs;
  try {
    std::cout << "Search-tree size by queue length (Figure 1(d)):\n\n";
    Table sizes({"#jobs", "#paths", "#nodes"});
    for (std::size_t n : {1u, 2u, 3u, 4u, 8u, 10u, 12u, 15u}) {
      const TreeSize t = search_tree_size(n);
      sizes.row().add(static_cast<long long>(n)).add(t.paths, 0).add(t.nodes, 0);
    }
    sizes.print(std::cout);

    const SearchProblem problem = make_problem();
    std::cout << "\nDecision point: 4 waiting jobs, 16-node machine, half "
                 "busy for 2 h. FCFS order starts with a 16-node 10-hour "
                 "job that cannot start until the machine fully drains.\n\n";

    Table runs({"algorithm", "budget L", "paths", "nodes", "excess (h)",
                "avg bsld", "exhausted"});
    for (const SearchAlgo algo : {SearchAlgo::Lds, SearchAlgo::Dds}) {
      for (const std::size_t budget : {4u, 12u, 24u, 200u}) {
        SearchConfig cfg;
        cfg.algo = algo;
        cfg.branching = Branching::Fcfs;
        cfg.node_limit = budget;
        const SearchResult r = run_search(problem, cfg);
        runs.row()
            .add(algo_name(algo) + "/fcfs")
            .add(static_cast<long long>(budget))
            .add(static_cast<long long>(r.paths_completed))
            .add(static_cast<long long>(r.nodes_visited))
            .add(r.value.excess_h)
            .add(r.value.avg_bsld)
            .add(r.exhausted ? "yes" : "no");
      }
    }
    runs.print(std::cout);

    std::cout << "\nBest order found by exhaustive DDS: ";
    SearchConfig cfg;
    cfg.algo = SearchAlgo::Dds;
    cfg.branching = Branching::Fcfs;
    cfg.node_limit = 1000;
    const SearchResult best = run_search(problem, cfg);
    for (std::size_t i : best.order) std::cout << problem.jobs[i].job->id << ' ';
    std::cout << "(job start times:";
    for (std::size_t i = 0; i < problem.size(); ++i)
      std::cout << " j" << problem.jobs[i].job->id << "@"
                << format_duration(best.starts[i]);
    std::cout << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
